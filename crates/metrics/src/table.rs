//! Plain-text table formatting for the figure-reproduction binaries.

use std::fmt::Write as _;

/// A simple column-aligned plain-text table.
///
/// ```
/// use metrics::Table;
/// let mut t = Table::new(vec!["FTL", "RandRead MiB/s"]);
/// t.add_row(vec!["DFTL".to_string(), "412.3".to_string()]);
/// t.add_row(vec!["LearnedFTL".to_string(), "633.0".to_string()]);
/// let text = t.render();
/// assert!(text.contains("LearnedFTL"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn add_row(&mut self, row: Vec<String>) {
        let mut row = row;
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Convenience: appends a row of display-able values.
    pub fn add_display_row<D: std::fmt::Display>(&mut self, row: Vec<D>) {
        self.add_row(row.into_iter().map(|d| d.to_string()).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as column-aligned text with a separator under the
    /// header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.add_row(vec!["xxxxxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have the same width up to trailing spaces.
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only".into()]);
        t.add_display_row(vec![1, 2]);
        assert_eq!(t.row_count(), 2);
        let text = t.render();
        assert!(text.contains("only"));
        assert!(text.contains('1'));
    }
}
