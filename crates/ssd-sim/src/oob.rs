//! Out-of-band (OOB) page metadata.
//!
//! Real NAND pages carry a spare area alongside the 4 KiB data area. FTLs use
//! it to store the reverse mapping (which LPN this physical page holds) so
//! that garbage collection and power-failure recovery can rebuild mapping
//! state, and LeaFTL additionally stashes the *error interval* of approximate
//! learned segments there (paper Section II-C).

/// Metadata stored in the out-of-band area of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OobData {
    /// The logical page number stored in this physical page, if any.
    pub lpn: Option<u64>,
    /// LeaFTL-style error interval: the maximum distance (in pages) between
    /// the predicted and the true position for the learned segment that
    /// covers this page. `0` means the prediction is exact.
    pub error_interval: u32,
    /// Marks translation pages (pages holding mapping metadata rather than
    /// host data).
    pub is_translation: bool,
}

impl OobData {
    /// OOB contents for a freshly written host data page holding `lpn`.
    pub fn mapped(lpn: u64) -> Self {
        OobData {
            lpn: Some(lpn),
            error_interval: 0,
            is_translation: false,
        }
    }

    /// OOB contents for a translation (mapping metadata) page.
    pub fn translation() -> Self {
        OobData {
            lpn: None,
            error_interval: 0,
            is_translation: true,
        }
    }

    /// Returns a copy with the LeaFTL error interval attached.
    pub fn with_error_interval(mut self, interval: u32) -> Self {
        self.error_interval = interval;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let d = OobData::mapped(77);
        assert_eq!(d.lpn, Some(77));
        assert!(!d.is_translation);
        assert_eq!(d.error_interval, 0);

        let t = OobData::translation();
        assert_eq!(t.lpn, None);
        assert!(t.is_translation);
    }

    #[test]
    fn error_interval_builder() {
        let d = OobData::mapped(3).with_error_interval(4);
        assert_eq!(d.error_interval, 4);
        assert_eq!(d.lpn, Some(3));
    }
}
