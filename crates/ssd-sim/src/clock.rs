//! Simulated time.
//!
//! All timing in the simulator is expressed in nanoseconds held in a `u64`.
//! [`SimTime`] is a point on the simulated timeline and [`Duration`] is a
//! span; both are cheap `Copy` newtypes so that physical-time arithmetic can
//! never be confused with counters or identifiers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
///
/// ```
/// use ssd_sim::{SimTime, Duration};
/// let t = SimTime::ZERO + Duration::from_micros(40);
/// assert_eq!(t.as_nanos(), 40_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time point from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time point from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Returns the number of nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the elapsed duration since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration from seconds expressed as a float.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be non-negative"
        );
        Duration((secs * 1_000_000_000.0) as u64)
    }

    /// Returns the duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in milliseconds (floating point).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Checked multiplication by an integer count.
    pub fn saturating_mul(self, count: u64) -> Duration {
        Duration(self.0.saturating_mul(count))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.2}us", self.0 as f64 / 1_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_roundtrips() {
        let t = SimTime::from_micros(40);
        assert_eq!(t.as_nanos(), 40_000);
        let t2 = t + Duration::from_micros(200);
        assert_eq!(t2.as_nanos(), 240_000);
        assert_eq!((t2 - t).as_micros_f64(), 200.0);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Duration::from_micros(2000).as_nanos(), 2_000_000);
        assert_eq!(Duration::from_secs_f64(0.002).as_nanos(), 2_000_000);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!((early - late).as_nanos(), 0);
        assert_eq!(early.saturating_since(late).as_nanos(), 0);
        assert_eq!(late.saturating_since(early).as_nanos(), 20);
    }

    #[test]
    fn max_returns_later() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [1u64, 2, 3].iter().map(|&n| Duration::from_nanos(n)).sum();
        assert_eq!(total.as_nanos(), 6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_micros(40)), "40.00us");
        assert_eq!(format!("{}", Duration::from_millis(2)), "2.000ms");
    }
}
