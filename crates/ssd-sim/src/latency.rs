//! Flash operation latency model.

use crate::clock::Duration;

/// Latency of each NAND operation plus the per-page channel transfer cost.
///
/// The defaults mirror FEMU's defaults used by the paper: 40 µs NAND read,
/// 200 µs NAND program and 2 ms block erase. The channel transfer time models
/// moving a 4 KiB page over the channel bus and is kept small by default so it
/// only matters when many chips on the same channel are busy at once.
///
/// ```
/// use ssd_sim::LatencyConfig;
/// let lat = LatencyConfig::default();
/// assert_eq!(lat.read.as_micros_f64(), 40.0);
/// assert_eq!(lat.program.as_micros_f64(), 200.0);
/// assert_eq!(lat.erase.as_millis_f64(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyConfig {
    /// Time to read one page out of the NAND array.
    pub read: Duration,
    /// Time to program one page into the NAND array.
    pub program: Duration,
    /// Time to erase one block.
    pub erase: Duration,
    /// Time to move one page across the channel bus.
    pub channel_transfer: Duration,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            read: Duration::from_micros(40),
            program: Duration::from_micros(200),
            erase: Duration::from_millis(2),
            channel_transfer: Duration::from_micros(5),
        }
    }
}

impl LatencyConfig {
    /// A latency configuration with every operation taking zero time. Useful
    /// for functional tests that do not care about timing.
    pub fn zero() -> Self {
        LatencyConfig {
            read: Duration::ZERO,
            program: Duration::ZERO,
            erase: Duration::ZERO,
            channel_transfer: Duration::ZERO,
        }
    }

    /// The FEMU default NVMe SSD latencies used throughout the paper.
    pub fn femu_default() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let l = LatencyConfig::femu_default();
        assert_eq!(l.read, Duration::from_micros(40));
        assert_eq!(l.program, Duration::from_micros(200));
        assert_eq!(l.erase, Duration::from_millis(2));
    }

    #[test]
    fn zero_config_is_all_zero() {
        let l = LatencyConfig::zero();
        assert_eq!(l.read, Duration::ZERO);
        assert_eq!(l.program, Duration::ZERO);
        assert_eq!(l.erase, Duration::ZERO);
        assert_eq!(l.channel_transfer, Duration::ZERO);
    }
}
