//! Flash operation latency model.

use crate::clock::Duration;

/// Latency of each NAND operation plus the per-page channel transfer cost and
/// the intra-chip (plane/cache) timing knobs.
///
/// [`LatencyConfig::femu_default`] is the single source of the defaults; the
/// `Default` impl delegates to it. The values mirror FEMU's defaults used by
/// the paper — 40 µs NAND read, 200 µs NAND program, 2 ms block erase — and
/// the plane/cache knobs mirror FEMU's LUN semantics:
///
/// * a **read** holds its plane (LUN) busy through the channel burst that
///   moves the page out (`cache_read = false`): the page register is occupied
///   until the data has left the die,
/// * a **program**'s data burst may cross the channel while the plane is
///   still busy programming the previous page (`cache_program = true`): FEMU
///   charges the transfer at channel availability, not LUN availability,
/// * a **multi-plane** read or program executes the NAND phase of every
///   participating plane in one slot whose duration defaults to the
///   single-plane latency.
///
/// ```
/// use ssd_sim::LatencyConfig;
/// let lat = LatencyConfig::femu_default();
/// assert_eq!(lat, LatencyConfig::default());
/// assert_eq!(lat.read.as_micros_f64(), 40.0);
/// assert_eq!(lat.program.as_micros_f64(), 200.0);
/// assert_eq!(lat.erase.as_millis_f64(), 2.0);
/// assert_eq!(lat.channel_transfer.as_micros_f64(), 5.0);
/// // One multi-plane slot costs the same as one single-plane operation.
/// assert_eq!(lat.multi_plane_read, lat.read);
/// assert_eq!(lat.multi_plane_program, lat.program);
/// // FEMU LUN semantics: reads hold the plane through the burst, program
/// // bursts overlap the previous program's NAND time.
/// assert!(!lat.cache_read);
/// assert!(lat.cache_program);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyConfig {
    /// Time to read one page out of the NAND array.
    pub read: Duration,
    /// Time to program one page into the NAND array.
    pub program: Duration,
    /// Time to erase one block.
    pub erase: Duration,
    /// Time to move one page across the channel bus.
    pub channel_transfer: Duration,
    /// NAND time of one multi-plane read slot (covers every participating
    /// plane). Defaults to `read`.
    pub multi_plane_read: Duration,
    /// NAND time of one multi-plane program slot (covers every participating
    /// plane). Defaults to `program`.
    pub multi_plane_program: Duration,
    /// Cache-mode reads: when `true`, a read's NAND phase waits only for the
    /// plane's previous NAND phase — the channel burst of page N overlaps the
    /// NAND time of page N+1 (the cache register holds page N). When `false`
    /// (FEMU default) the plane is held busy until its page has crossed the
    /// channel.
    pub cache_read: bool,
    /// Cache-mode programs: when `true` (FEMU default), the data burst of
    /// page N+1 may cross the channel while the plane still programs page N.
    /// When `false` the burst additionally waits for the plane to go idle
    /// (strict single-register semantics).
    pub cache_program: bool,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::femu_default()
    }
}

impl LatencyConfig {
    /// A latency configuration with every operation taking zero time. Useful
    /// for functional tests that do not care about timing.
    pub fn zero() -> Self {
        LatencyConfig {
            read: Duration::ZERO,
            program: Duration::ZERO,
            erase: Duration::ZERO,
            channel_transfer: Duration::ZERO,
            multi_plane_read: Duration::ZERO,
            multi_plane_program: Duration::ZERO,
            ..Self::femu_default()
        }
    }

    /// The FEMU default NVMe SSD latencies used throughout the paper. This is
    /// the one place the default numbers live; `LatencyConfig::default()`
    /// delegates here.
    pub fn femu_default() -> Self {
        let read = Duration::from_micros(40);
        let program = Duration::from_micros(200);
        LatencyConfig {
            read,
            program,
            erase: Duration::from_millis(2),
            channel_transfer: Duration::from_micros(5),
            multi_plane_read: read,
            multi_plane_program: program,
            cache_read: false,
            cache_program: true,
        }
    }

    /// Returns a copy with cache-mode reads enabled or disabled.
    pub fn with_cache_read(mut self, cache_read: bool) -> Self {
        self.cache_read = cache_read;
        self
    }

    /// Returns a copy with cache-mode programs enabled or disabled.
    pub fn with_cache_program(mut self, cache_program: bool) -> Self {
        self.cache_program = cache_program;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let l = LatencyConfig::femu_default();
        assert_eq!(l.read, Duration::from_micros(40));
        assert_eq!(l.program, Duration::from_micros(200));
        assert_eq!(l.erase, Duration::from_millis(2));
        assert_eq!(l.multi_plane_read, l.read);
        assert_eq!(l.multi_plane_program, l.program);
        assert!(!l.cache_read);
        assert!(l.cache_program);
    }

    #[test]
    fn default_is_femu_default() {
        assert_eq!(LatencyConfig::default(), LatencyConfig::femu_default());
    }

    #[test]
    fn zero_config_is_all_zero() {
        let l = LatencyConfig::zero();
        assert_eq!(l.read, Duration::ZERO);
        assert_eq!(l.program, Duration::ZERO);
        assert_eq!(l.erase, Duration::ZERO);
        assert_eq!(l.channel_transfer, Duration::ZERO);
        assert_eq!(l.multi_plane_read, Duration::ZERO);
        assert_eq!(l.multi_plane_program, Duration::ZERO);
    }

    #[test]
    fn builders_flip_cache_modes() {
        let l = LatencyConfig::femu_default().with_cache_read(true);
        assert!(l.cache_read);
        let l = l.with_cache_program(false);
        assert!(!l.cache_program);
    }
}
