//! Physical addressing: the PPN codec and the virtual-PPN representation.
//!
//! A physical page number (PPN) encodes the position of a page in the SSD's
//! geometry tree by concatenating the address fields from the highest level
//! (channel) to the lowest (page):
//!
//! ```text
//! PPN  = ((((channel · C + chip) · P + plane) · B + block) · G + page)
//! ```
//!
//! where `C`, `P`, `B`, `G` are the fan-outs of the respective levels.
//!
//! The paper's *virtual PPN* (Section III-C) permutes those fields so that the
//! allocation order — channel fastest, then chip, plane, page and block
//! slowest — produces **consecutive integers**. Two pages that are allocated
//! back-to-back by a striping allocator land on different chips and therefore
//! have wildly different PPNs, but their VPPNs differ by exactly one. Learned
//! index models are trained on LPN→VPPN mappings for this reason.
//!
//! ```text
//! VPPN = ((((block · G + page) · P + plane) · C + chip) · CH + channel)
//! ```
//!
//! Both codecs are bijections over `0..total_pages`, verified by the property
//! tests at the bottom of this module.

use crate::geometry::Geometry;

/// A physical page number: an index into the device's pages in geometry order.
pub type Ppn = u64;

/// A virtual physical page number: the allocation-order permutation of a PPN.
pub type Vppn = u64;

/// A fully decomposed physical page address.
///
/// ```
/// use ssd_sim::{Geometry, PhysAddr};
/// let g = Geometry::new(8, 8, 1, 256, 512, 4096);
/// let addr = PhysAddr { channel: 3, chip: 2, plane: 0, block: 17, page: 250 };
/// let ppn = addr.to_ppn(&g);
/// assert_eq!(PhysAddr::from_ppn(ppn, &g), addr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysAddr {
    /// Channel index.
    pub channel: u32,
    /// Chip (LUN) index within the channel.
    pub chip: u32,
    /// Plane index within the chip.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl PhysAddr {
    /// Decomposes a PPN into its geometry fields.
    ///
    /// # Panics
    ///
    /// Panics if `ppn` is outside the device.
    pub fn from_ppn(ppn: Ppn, g: &Geometry) -> Self {
        assert!(ppn < g.total_pages(), "ppn {ppn} out of range");
        let page = (ppn % u64::from(g.pages_per_block)) as u32;
        let rest = ppn / u64::from(g.pages_per_block);
        let block = (rest % u64::from(g.blocks_per_plane)) as u32;
        let rest = rest / u64::from(g.blocks_per_plane);
        let plane = (rest % u64::from(g.planes_per_chip)) as u32;
        let rest = rest / u64::from(g.planes_per_chip);
        let chip = (rest % u64::from(g.chips_per_channel)) as u32;
        let channel = (rest / u64::from(g.chips_per_channel)) as u32;
        PhysAddr {
            channel,
            chip,
            plane,
            block,
            page,
        }
    }

    /// Composes the geometry fields back into a PPN.
    ///
    /// # Panics
    ///
    /// Panics if any field is outside the geometry.
    pub fn to_ppn(&self, g: &Geometry) -> Ppn {
        self.validate(g);
        let mut v = u64::from(self.channel);
        v = v * u64::from(g.chips_per_channel) + u64::from(self.chip);
        v = v * u64::from(g.planes_per_chip) + u64::from(self.plane);
        v = v * u64::from(g.blocks_per_plane) + u64::from(self.block);
        v = v * u64::from(g.pages_per_block) + u64::from(self.page);
        v
    }

    /// Composes the geometry fields into a virtual PPN (allocation order:
    /// channel fastest, block slowest).
    ///
    /// # Panics
    ///
    /// Panics if any field is outside the geometry.
    pub fn to_vppn(&self, g: &Geometry) -> Vppn {
        self.validate(g);
        let mut v = u64::from(self.block);
        v = v * u64::from(g.pages_per_block) + u64::from(self.page);
        v = v * u64::from(g.planes_per_chip) + u64::from(self.plane);
        v = v * u64::from(g.chips_per_channel) + u64::from(self.chip);
        v = v * u64::from(g.channels) + u64::from(self.channel);
        v
    }

    /// Decomposes a virtual PPN into its geometry fields.
    ///
    /// # Panics
    ///
    /// Panics if `vppn` is outside the device.
    pub fn from_vppn(vppn: Vppn, g: &Geometry) -> Self {
        assert!(vppn < g.total_pages(), "vppn {vppn} out of range");
        let channel = (vppn % u64::from(g.channels)) as u32;
        let rest = vppn / u64::from(g.channels);
        let chip = (rest % u64::from(g.chips_per_channel)) as u32;
        let rest = rest / u64::from(g.chips_per_channel);
        let plane = (rest % u64::from(g.planes_per_chip)) as u32;
        let rest = rest / u64::from(g.planes_per_chip);
        let page = (rest % u64::from(g.pages_per_block)) as u32;
        let block = (rest / u64::from(g.pages_per_block)) as u32;
        PhysAddr {
            channel,
            chip,
            plane,
            block,
            page,
        }
    }

    /// Returns the flat chip index this address lives on.
    pub fn chip_index(&self, g: &Geometry) -> u64 {
        g.chip_index(self.channel, self.chip)
    }

    /// Returns the device-wide flat block index this address lives in.
    pub fn flat_block(&self, g: &Geometry) -> u64 {
        (self.chip_index(g) * u64::from(g.planes_per_chip) + u64::from(self.plane))
            * u64::from(g.blocks_per_plane)
            + u64::from(self.block)
    }

    fn validate(&self, g: &Geometry) {
        assert!(self.channel < g.channels, "channel out of range");
        assert!(self.chip < g.chips_per_channel, "chip out of range");
        assert!(self.plane < g.planes_per_chip, "plane out of range");
        assert!(self.block < g.blocks_per_plane, "block out of range");
        assert!(self.page < g.pages_per_block, "page out of range");
    }
}

/// Converts a PPN directly into a virtual PPN.
pub fn ppn_to_vppn(ppn: Ppn, g: &Geometry) -> Vppn {
    PhysAddr::from_ppn(ppn, g).to_vppn(g)
}

/// Converts a virtual PPN back into a PPN.
pub fn vppn_to_ppn(vppn: Vppn, g: &Geometry) -> Ppn {
    PhysAddr::from_vppn(vppn, g).to_ppn(g)
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ch{}/chip{}/pl{}/blk{}/pg{}",
            self.channel, self.chip, self.plane, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper() -> Geometry {
        Geometry::new(8, 8, 1, 256, 512, 4096)
    }

    #[test]
    fn ppn_roundtrip_simple() {
        let g = paper();
        for ppn in [0u64, 1, 511, 512, 131_071, 8_388_607] {
            let addr = PhysAddr::from_ppn(ppn, &g);
            assert_eq!(addr.to_ppn(&g), ppn);
        }
    }

    #[test]
    fn vppn_roundtrip_simple() {
        let g = paper();
        for vppn in [0u64, 1, 63, 64, 4_000_000, 8_388_607] {
            let addr = PhysAddr::from_vppn(vppn, &g);
            assert_eq!(addr.to_vppn(&g), vppn);
        }
    }

    #[test]
    fn allocation_order_gives_consecutive_vppns() {
        // Striping across channels (allocation order: channel fastest) must
        // produce consecutive VPPNs, which is the whole point of the
        // representation (paper Fig. 12).
        let g = paper();
        let base = PhysAddr {
            channel: 0,
            chip: 5,
            plane: 0,
            block: 64,
            page: 127,
        };
        let mut prev = None;
        for ch in 0..g.channels {
            let addr = PhysAddr {
                channel: ch,
                ..base
            };
            let vppn = addr.to_vppn(&g);
            if let Some(p) = prev {
                assert_eq!(
                    vppn,
                    p + 1,
                    "channel-striped pages must be VPPN-consecutive"
                );
            }
            prev = Some(vppn);
        }
    }

    #[test]
    fn vppn_differs_from_ppn_for_scattered_pages() {
        let g = paper();
        let a = PhysAddr {
            channel: 4,
            chip: 5,
            plane: 0,
            block: 64,
            page: 127,
        };
        let b = PhysAddr { channel: 5, ..a };
        // PPNs of channel-adjacent pages are far apart...
        assert!(b.to_ppn(&g) - a.to_ppn(&g) > 1_000_000);
        // ...but VPPNs are adjacent.
        assert_eq!(b.to_vppn(&g), a.to_vppn(&g) + 1);
    }

    #[test]
    fn chip_index_and_flat_block() {
        let g = paper();
        let a = PhysAddr {
            channel: 3,
            chip: 2,
            plane: 0,
            block: 17,
            page: 0,
        };
        assert_eq!(a.chip_index(&g), 3 * 8 + 2);
        assert_eq!(a.flat_block(&g), (3 * 8 + 2) * 256 + 17);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_ppn_rejects_out_of_range() {
        let g = paper();
        PhysAddr::from_ppn(g.total_pages(), &g);
    }

    proptest! {
        #[test]
        fn prop_ppn_roundtrip(ppn in 0u64..8_388_608) {
            let g = paper();
            let addr = PhysAddr::from_ppn(ppn, &g);
            prop_assert_eq!(addr.to_ppn(&g), ppn);
        }

        #[test]
        fn prop_vppn_bijection(ppn in 0u64..8_388_608) {
            let g = paper();
            let vppn = ppn_to_vppn(ppn, &g);
            prop_assert!(vppn < g.total_pages());
            prop_assert_eq!(vppn_to_ppn(vppn, &g), ppn);
        }

        #[test]
        fn prop_roundtrip_odd_geometry(
            channels in 1u32..5,
            chips in 1u32..5,
            planes in 1u32..3,
            blocks in 1u32..20,
            pages in 1u32..40,
            seed in 0u64..10_000,
        ) {
            let g = Geometry::new(channels, chips, planes, blocks, pages, 4096);
            let ppn = seed % g.total_pages();
            let addr = PhysAddr::from_ppn(ppn, &g);
            prop_assert_eq!(addr.to_ppn(&g), ppn);
            let vppn = addr.to_vppn(&g);
            prop_assert!(vppn < g.total_pages());
            prop_assert_eq!(PhysAddr::from_vppn(vppn, &g), addr);
        }
    }
}
