//! Device error types.

use std::error::Error;
use std::fmt;

/// Result alias for device operations.
pub type DeviceResult<T> = Result<T, DeviceError>;

/// Errors returned by [`crate::FlashDevice`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The physical page number is outside the device.
    PpnOutOfRange {
        /// The offending PPN.
        ppn: u64,
        /// Number of pages in the device.
        total: u64,
    },
    /// The block index is outside the device.
    BlockOutOfRange {
        /// The offending flat block index.
        block: u64,
        /// Number of blocks in the device.
        total: u64,
    },
    /// A page was programmed twice without an intervening erase.
    ProgramOnUsedPage {
        /// The offending PPN.
        ppn: u64,
    },
    /// A free (never programmed) page was read.
    ReadOnFreePage {
        /// The offending PPN.
        ppn: u64,
    },
    /// An erase targeted a block that still holds valid pages.
    EraseWithValidPages {
        /// The offending flat block index.
        block: u64,
        /// How many valid pages remain in the block.
        valid: u32,
    },
    /// A multi-plane group was not aligned: every page of the group must live
    /// on the same chip, on strictly ascending planes, at the same
    /// (block, page) offset within its plane.
    MultiPlaneMisaligned {
        /// The first page that breaks the alignment.
        ppn: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::PpnOutOfRange { ppn, total } => {
                write!(f, "ppn {ppn} out of range (device has {total} pages)")
            }
            DeviceError::BlockOutOfRange { block, total } => {
                write!(f, "block {block} out of range (device has {total} blocks)")
            }
            DeviceError::ProgramOnUsedPage { ppn } => {
                write!(f, "program on page {ppn} that was not erased")
            }
            DeviceError::ReadOnFreePage { ppn } => {
                write!(f, "read on free page {ppn}")
            }
            DeviceError::EraseWithValidPages { block, valid } => {
                write!(f, "erase of block {block} with {valid} valid pages")
            }
            DeviceError::MultiPlaneMisaligned { ppn } => {
                write!(
                    f,
                    "page {ppn} breaks multi-plane alignment (same chip, ascending \
                     planes, equal block and page offsets required)"
                )
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = DeviceError::PpnOutOfRange { ppn: 10, total: 4 };
        assert!(e.to_string().contains("ppn 10"));
        let e = DeviceError::ProgramOnUsedPage { ppn: 3 };
        assert!(e.to_string().contains("page 3"));
        let e = DeviceError::EraseWithValidPages { block: 7, valid: 2 };
        assert!(e.to_string().contains("block 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DeviceError>();
    }
}
