//! Device configuration presets.

use crate::geometry::Geometry;
use crate::latency::LatencyConfig;

/// Full configuration of a simulated SSD: geometry, latencies and the
/// over-provisioning ratio that determines how much of the raw capacity is
/// exposed to the host.
///
/// ```
/// use ssd_sim::SsdConfig;
/// let cfg = SsdConfig::paper();
/// assert_eq!(cfg.geometry.total_chips(), 64);
/// assert!(cfg.logical_pages() < cfg.geometry.total_pages());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdConfig {
    /// The geometry tree of the device.
    pub geometry: Geometry,
    /// NAND operation latencies.
    pub latency: LatencyConfig,
    /// Fraction of raw capacity reserved as over-provisioning space, in `[0, 1)`.
    pub op_ratio: f64,
}

impl SsdConfig {
    /// The paper's FEMU configuration: 32 GiB raw, 64 chips
    /// (8 channels × 8 ways), 256 blocks/chip, 512 pages/block, 4 KiB pages,
    /// roughly 6 % over-provisioning (32 GiB logical + 2 GiB OP).
    pub fn paper() -> Self {
        SsdConfig {
            geometry: Geometry::new(8, 8, 1, 256, 512, 4096),
            latency: LatencyConfig::femu_default(),
            op_ratio: 0.0625,
        }
    }

    /// A scaled-down configuration (4 channels × 4 chips × 96 blocks × 128
    /// pages ≈ 768 MiB raw) that keeps the paper's ratios — over-provisioning
    /// fraction, pages per translation page, chips ≫ 1 — while letting the
    /// full experiment suite run in minutes. This is the default used by the
    /// figure-reproduction binaries.
    pub fn small() -> Self {
        SsdConfig {
            geometry: Geometry::new(4, 4, 1, 96, 128, 4096),
            latency: LatencyConfig::femu_default(),
            op_ratio: 0.0625,
        }
    }

    /// A minimal configuration (2 channels × 2 chips × 16 blocks × 128 pages,
    /// 25 % over-provisioning) for unit tests. The generous over-provisioning
    /// keeps group-based allocation workable even at this scale.
    pub fn tiny() -> Self {
        SsdConfig {
            geometry: Geometry::new(2, 2, 1, 16, 128, 4096),
            latency: LatencyConfig::femu_default(),
            op_ratio: 0.25,
        }
    }

    /// Same as [`SsdConfig::tiny`] but with zero latencies, for functional
    /// tests that do not exercise timing.
    pub fn tiny_zero_latency() -> Self {
        SsdConfig {
            latency: LatencyConfig::zero(),
            ..Self::tiny()
        }
    }

    /// Returns a copy with a different over-provisioning ratio.
    ///
    /// # Panics
    ///
    /// Panics if `op_ratio` is not in `[0, 1)`.
    pub fn with_op_ratio(mut self, op_ratio: f64) -> Self {
        assert!((0.0..1.0).contains(&op_ratio), "op_ratio must be in [0,1)");
        self.op_ratio = op_ratio;
        self
    }

    /// Returns a copy with a different latency configuration.
    pub fn with_latency(mut self, latency: LatencyConfig) -> Self {
        self.latency = latency;
        self
    }

    /// Returns a copy with a different geometry.
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Returns a copy whose chips are split into `planes` planes while every
    /// other dimension — and therefore the raw capacity — stays the same: the
    /// per-chip block budget is redistributed as `blocks_per_chip / planes`
    /// blocks per plane. This is how the plane-scaling sweep compares
    /// geometries that differ only in intra-chip parallelism.
    ///
    /// ```
    /// use ssd_sim::SsdConfig;
    /// let base = SsdConfig::tiny();
    /// let split = base.with_planes(2);
    /// assert_eq!(split.geometry.planes_per_chip, 2);
    /// assert_eq!(split.geometry.total_pages(), base.geometry.total_pages());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `planes` is zero or does not divide the per-chip block count.
    pub fn with_planes(mut self, planes: u32) -> Self {
        let g = self.geometry;
        let blocks_per_chip = g.blocks_per_chip();
        assert!(planes > 0, "planes must be non-zero");
        assert!(
            blocks_per_chip.is_multiple_of(u64::from(planes)),
            "planes ({planes}) must divide the per-chip block count ({blocks_per_chip})"
        );
        self.geometry = Geometry::new(
            g.channels,
            g.chips_per_channel,
            planes,
            (blocks_per_chip / u64::from(planes)) as u32,
            g.pages_per_block,
            g.page_size,
        );
        self
    }

    /// Number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.geometry.logical_pages(self.op_ratio)
    }

    /// Logical capacity in bytes exposed to the host.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_pages() * u64::from(self.geometry.page_size)
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_paper() {
        let cfg = SsdConfig::paper();
        assert_eq!(cfg.geometry.total_pages(), 8_388_608);
        assert_eq!(cfg.geometry.total_chips(), 64);
        // 32 GiB raw, roughly 30 GiB logical with the stated OP split.
        assert!(cfg.logical_bytes() > 29 * 1024 * 1024 * 1024);
        assert!(cfg.logical_bytes() < 31 * 1024 * 1024 * 1024);
    }

    #[test]
    fn small_preset_keeps_parallelism() {
        let cfg = SsdConfig::small();
        assert!(cfg.geometry.total_chips() >= 8);
        assert!(cfg.logical_pages() > 50_000);
        assert!((cfg.op_ratio - SsdConfig::paper().op_ratio).abs() < 1e-9);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = SsdConfig::tiny().with_op_ratio(0.25);
        assert!((cfg.op_ratio - 0.25).abs() < 1e-9);
        let cfg = cfg.with_latency(LatencyConfig::zero());
        assert_eq!(cfg.latency, LatencyConfig::zero());
    }

    #[test]
    #[should_panic(expected = "op_ratio")]
    fn bad_op_ratio_rejected() {
        SsdConfig::tiny().with_op_ratio(1.5);
    }
}
