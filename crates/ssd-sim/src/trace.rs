//! Structured simulation tracing: sim-time-keyed span/instant/counter events.
//!
//! Every layer of the stack — the device's plane/channel timing, the I/O
//! scheduler's arbitration, the FTLs' translation path and the harness's host
//! models — can emit [`TraceEvent`]s into the [`TraceBuffer`] owned by a
//! [`crate::FlashDevice`]. The buffer lives here, on the device, because the
//! device is the one object every layer already holds a `&mut` to at the
//! moment something trace-worthy happens; no extra plumbing, no shared
//! handles, and the thread-parallel backend needs no synchronisation (each
//! shard's device — and therefore its buffer — is owned by exactly one
//! worker).
//!
//! Tracing is **off by default** and zero-cost when off: every emission site
//! is guarded by a single `Option` check on the device, no event is
//! constructed and nothing allocates. With tracing on, events are appended in
//! execution order, which is deterministic in simulated time and dispatch
//! order — identical streams on the simulated and thread-parallel backends.
//!
//! [`TraceSink`] is the seam: [`TraceBuffer`] is the recording sink used
//! everywhere today, [`NullSink`] is the explicit no-op, and a future
//! allocation-free hot path can implement the trait over a preallocated ring
//! or a streaming encoder without touching any emission site.

use crate::clock::SimTime;
use crate::stats::FlashOp;

/// How one logical page read was resolved by an FTL's translation path.
///
/// Mirrors the `ReadClass` taxonomy of the FTL layer without depending on it
/// (the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceReadClass {
    /// Mapping found in the cached mapping table: one flash read.
    CmtHit,
    /// Mapping predicted exactly by a learned model: one flash read.
    ModelHit,
    /// Served from an in-memory write buffer: no flash read.
    BufferHit,
    /// Translation page read first: two flash reads.
    DoubleRead,
    /// GTD chain walked: three flash reads.
    TripleRead,
}

impl TraceReadClass {
    /// Short stable label, used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            TraceReadClass::CmtHit => "cmt-hit",
            TraceReadClass::ModelHit => "model-hit",
            TraceReadClass::BufferHit => "buffer-hit",
            TraceReadClass::DoubleRead => "double-read",
            TraceReadClass::TripleRead => "triple-read",
        }
    }

    /// Whether this classification is a CMT hit (the hit-rate numerator).
    pub fn is_cmt_hit(self) -> bool {
        matches!(self, TraceReadClass::CmtHit)
    }
}

/// What a [`TraceEvent`] describes. Payload variants are deliberately plain
/// integers (chip/plane/channel indices, counts) so events are `Copy`, the
/// buffer is a flat `Vec`, and exporters need no cross-crate type knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceData {
    /// NAND-phase occupancy of one plane (span). `gc` marks staged-GC charge
    /// replay traffic.
    PlaneOp {
        /// Flat chip index.
        chip: u32,
        /// Plane index within the chip.
        plane: u32,
        /// The flash operation occupying the plane.
        op: FlashOp,
        /// Whether this is staged-GC charge replay rather than a live call.
        gc: bool,
    },
    /// One page burst across a channel bus (span).
    BusXfer {
        /// Channel index.
        channel: u32,
        /// The flash operation the burst belongs to.
        op: FlashOp,
        /// Whether this is staged-GC charge replay rather than a live call.
        gc: bool,
    },
    /// One scheduler command's enqueue→dispatch→complete lifecycle (span from
    /// submission to completion; `issued` marks the dispatch point inside it).
    CmdLifecycle {
        /// Flat chip index the command targeted.
        chip: u32,
        /// The flash operation the command performs.
        op: FlashOp,
        /// Whether the command ran in the scheduler's GC priority class.
        gc: bool,
        /// When the scheduler issued the command to the device.
        issued: SimTime,
    },
    /// Per-chip scheduler queue depths after a dispatch or completion
    /// (counter).
    QueueDepth {
        /// Flat chip index.
        chip: u32,
        /// Queued host-priority commands.
        host: u32,
        /// Queued GC-priority commands.
        gc: u32,
    },
    /// A queued GC command was bypassed by host traffic (instant).
    GcYield {
        /// Flat chip index the arbitration happened on.
        chip: u32,
    },
    /// A queued GC command was forced through by the starvation bound
    /// (instant).
    GcForced {
        /// Flat chip index the arbitration happened on.
        chip: u32,
    },
    /// One staged GC batch was handed to the scheduler (instant at the end of
    /// the stage phase).
    GcStaged {
        /// Staged flash operations in the batch.
        ops: u32,
        /// Collection units (victims) the batch covers.
        units: u32,
    },
    /// An explicit drain of outstanding scheduled-GC work (span).
    GcDrain {
        /// Commands still outstanding when the drain began.
        outstanding: u32,
    },
    /// A garbage collection was triggered (instant).
    GcTrigger,
    /// A collection unit's flash work finished (instant).
    GcComplete,
    /// How one logical page read was resolved (instant).
    ReadClass {
        /// The resolution.
        class: TraceReadClass,
    },
    /// One submission-ring batch executed by a shard's translation engine
    /// (counter): how many requests the thread-parallel backend coalesced
    /// into a single channel round-trip. Emitted only by the threaded
    /// backend — exporters comparing backends must filter it out first.
    RingBatch {
        /// Work items in the batch.
        entries: u32,
    },
    /// One host request's lifecycle (span from arrival to completion;
    /// `issue` marks the dispatch point inside it).
    HostRequest {
        /// Dense request index in dispatch order.
        req: u64,
        /// The lane (shard) that served the request, when known.
        lane: u32,
        /// Whether the request was a write.
        write: bool,
        /// Pages transferred.
        pages: u32,
        /// Tenant (namespace) the request belongs to; 0 for single-tenant
        /// workloads.
        tenant: u32,
        /// When the host model issued the request.
        issue: SimTime,
    },
}

/// One trace event: a time span (or a point, when `end == start`) plus what
/// happened. `shard` is filled in by multi-shard frontends when per-device
/// buffers are collected and merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event start (the sort key of a merged trace).
    pub start: SimTime,
    /// Event end; equals `start` for instants and counters.
    pub end: SimTime,
    /// Shard the event originated from (0 for monolithic FTLs).
    pub shard: u32,
    /// The payload.
    pub data: TraceData,
}

impl TraceEvent {
    /// Whether the event is a point rather than a span.
    pub fn is_instant(&self) -> bool {
        self.start == self.end
    }
}

/// The sink interface of the tracing layer: spans, instants and counter
/// samples keyed by simulated time.
///
/// Implemented by [`TraceBuffer`] (record everything) and [`NullSink`]
/// (drop everything). The device's emission sites are guarded by an `Option`
/// rather than dispatching through a boxed sink, so the disabled path costs
/// one branch and the trait stays object-safe for future streaming sinks.
pub trait TraceSink {
    /// Records a span from `start` to `end`.
    fn span(&mut self, start: SimTime, end: SimTime, data: TraceData);

    /// Records a point event at `at`.
    fn instant(&mut self, at: SimTime, data: TraceData) {
        self.span(at, at, data);
    }

    /// Records a counter sample at `at`. Counters are point events whose
    /// payload carries the sampled values.
    fn counter(&mut self, at: SimTime, data: TraceData) {
        self.span(at, at, data);
    }
}

/// A sink that drops every event: the explicit spelling of "tracing off".
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn span(&mut self, _start: SimTime, _end: SimTime, _data: TraceData) {}
}

/// An in-memory recording sink: a flat, append-only event buffer.
///
/// Events are appended in execution order. Because the simulator is
/// deterministic in simulated time and dispatch order, two runs of the same
/// seeded workload produce byte-identical buffers — on either execution
/// backend.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Takes the recorded events out of the buffer, leaving it empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for TraceBuffer {
    fn span(&mut self, start: SimTime, end: SimTime, data: TraceData) {
        debug_assert!(end >= start, "trace spans must not run backwards");
        self.events.push(TraceEvent {
            start,
            end,
            shard: 0,
            data,
        });
    }
}

/// Merges per-shard event streams into one deterministic trace.
///
/// Each stream is tagged with its shard index and the union is stably sorted
/// by event start time, so ties preserve (shard, emission) order. Given
/// identical per-shard streams — which the cross-backend equivalence
/// guarantees — the merged trace is byte-identical regardless of which
/// backend (or how many worker threads) produced the shards.
pub fn merge_shard_traces(shards: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let total = shards.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for (shard, events) in shards.into_iter().enumerate() {
        merged.extend(events.into_iter().map(|mut e| {
            e.shard = shard as u32;
            e
        }));
    }
    merged.sort_by_key(|e| e.start);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn buffer_records_in_order() {
        let mut b = TraceBuffer::new();
        b.span(
            at(1),
            at(3),
            TraceData::PlaneOp {
                chip: 0,
                plane: 0,
                op: FlashOp::Read,
                gc: false,
            },
        );
        b.instant(at(2), TraceData::GcTrigger);
        assert_eq!(b.len(), 2);
        assert!(!b.events()[0].is_instant());
        assert!(b.events()[1].is_instant());
        let taken = {
            let mut b = b;
            b.take()
        };
        assert_eq!(taken.len(), 2);
    }

    #[test]
    fn null_sink_drops_everything() {
        let mut n = NullSink;
        n.span(at(0), at(1), TraceData::GcTrigger);
        n.instant(at(0), TraceData::GcTrigger);
        n.counter(
            at(0),
            TraceData::QueueDepth {
                chip: 0,
                host: 1,
                gc: 2,
            },
        );
    }

    #[test]
    fn merge_tags_shards_and_sorts_stably() {
        let mut a = TraceBuffer::new();
        a.instant(at(5), TraceData::GcTrigger);
        a.instant(at(1), TraceData::GcTrigger);
        let mut b = TraceBuffer::new();
        b.instant(at(5), TraceData::GcComplete);
        let merged = merge_shard_traces(vec![a.take(), b.take()]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].start, at(1));
        assert_eq!(merged[0].shard, 0);
        // Equal start times keep shard order: shard 0's event first.
        assert_eq!(merged[1].shard, 0);
        assert_eq!(merged[1].data, TraceData::GcTrigger);
        assert_eq!(merged[2].shard, 1);
        assert_eq!(merged[2].data, TraceData::GcComplete);
    }

    #[test]
    fn read_class_labels_are_stable() {
        assert_eq!(TraceReadClass::CmtHit.label(), "cmt-hit");
        assert!(TraceReadClass::CmtHit.is_cmt_hit());
        assert!(!TraceReadClass::DoubleRead.is_cmt_hit());
    }
}
