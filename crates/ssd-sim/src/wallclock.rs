//! The workspace's only gateway to the host wall clock.
//!
//! Simulated time must be a pure function of the workload: the threaded
//! backend, the ring dispatcher and the trace artifacts are all gated on
//! bit-for-bit equality, so a stray `Instant::now()` in sim-path code is a
//! determinism bug waiting to happen. This module is the single place the
//! workspace reads the host clock — simlint's `wall-clock` rule denies
//! `Instant::now`/`SystemTime` everywhere else (see `crates/simlint`), and
//! `harness::wallclock` re-exports it as the profiling seam the runners and
//! figure binaries use.
//!
//! Legitimate wall-clock uses are *measurements about the simulator*, never
//! inputs to it: self-profiling rates (`RunResult::profile`), the
//! `fig25_wallclock_scaling` timing loops, and LearnedFTL's
//! `charge_training_time` — which deliberately charges real host compute
//! onto the simulated timeline and is therefore switched off wherever
//! determinism is asserted.
//!
//! ```
//! use ssd_sim::wallclock::WallTimer;
//!
//! let timer = WallTimer::start();
//! let elapsed: std::time::Duration = timer.elapsed();
//! assert!(elapsed >= std::time::Duration::ZERO);
//! ```

/// A monotonic stopwatch over the host clock.
///
/// The inner `Instant` is private on purpose: callers can only measure
/// elapsed host time, never obtain an absolute timestamp to feed into
/// simulation state.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    started: std::time::Instant,
}

impl WallTimer {
    /// Starts a stopwatch at the current host time.
    pub fn start() -> WallTimer {
        WallTimer {
            started: std::time::Instant::now(),
        }
    }

    /// Host time elapsed since [`WallTimer::start`].
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let timer = WallTimer::start();
        let a = timer.elapsed();
        let b = timer.elapsed();
        assert!(b >= a);
    }
}
