//! Per-chip (LUN) state: blocks and the busy-until timeline.

use crate::block::Block;
use crate::clock::SimTime;

/// One NAND chip (LUN): a set of blocks plus the time at which the chip will
/// next be idle.
///
/// A chip is the unit of operation-level parallelism in the simulator: two
/// operations on the same chip serialise, two operations on different chips
/// overlap (subject to the shared channel bus).
#[derive(Debug, Clone)]
pub struct Chip {
    blocks: Vec<Block>,
    busy_until: SimTime,
}

impl Chip {
    /// Creates a chip with `blocks` erased blocks of `pages_per_block` pages.
    pub fn new(blocks: u32, pages_per_block: u32) -> Self {
        Chip {
            blocks: (0..blocks).map(|_| Block::new(pages_per_block)).collect(),
            busy_until: SimTime::ZERO,
        }
    }

    /// Number of blocks on the chip.
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Shared access to the block at `index` (chip-local index).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block(&self, index: u32) -> &Block {
        &self.blocks[index as usize]
    }

    /// Mutable access to the block at `index` (chip-local index).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block_mut(&mut self, index: u32) -> &mut Block {
        &mut self.blocks[index as usize]
    }

    /// The simulated time at which this chip becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Reserves the chip for an operation issued at `issue` that takes
    /// `latency` once it starts. Returns the completion time.
    pub fn occupy(&mut self, issue: SimTime, latency: crate::Duration) -> SimTime {
        let start = issue.max(self.busy_until);
        let done = start + latency;
        self.busy_until = done;
        done
    }

    /// Total number of free (programmable) pages across all blocks.
    pub fn free_pages(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.free_pages())).sum()
    }

    /// Total number of valid pages across all blocks.
    pub fn valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.valid_pages())).sum()
    }

    /// Sum of erase counts across all blocks (wear indicator).
    pub fn total_erases(&self) -> u64 {
        self.blocks.iter().map(Block::erase_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    #[test]
    fn occupy_serialises_operations() {
        let mut chip = Chip::new(2, 4);
        let d = Duration::from_micros(40);
        let t1 = chip.occupy(SimTime::ZERO, d);
        assert_eq!(t1, SimTime::from_micros(40));
        // Issued "in the past" relative to the chip: must queue.
        let t2 = chip.occupy(SimTime::from_micros(10), d);
        assert_eq!(t2, SimTime::from_micros(80));
        // Issued after the chip is idle: starts immediately.
        let t3 = chip.occupy(SimTime::from_micros(200), d);
        assert_eq!(t3, SimTime::from_micros(240));
    }

    #[test]
    fn page_counters_aggregate_blocks() {
        let mut chip = Chip::new(2, 4);
        assert_eq!(chip.free_pages(), 8);
        chip.block_mut(0).program(0);
        chip.block_mut(1).program(0);
        chip.block_mut(1).program(1);
        assert_eq!(chip.free_pages(), 5);
        assert_eq!(chip.valid_pages(), 3);
        chip.block_mut(1).invalidate(0);
        assert_eq!(chip.valid_pages(), 2);
    }

    #[test]
    fn erase_counter_aggregates() {
        let mut chip = Chip::new(3, 2);
        chip.block_mut(0).erase();
        chip.block_mut(0).erase();
        chip.block_mut(2).erase();
        assert_eq!(chip.total_erases(), 3);
    }
}
