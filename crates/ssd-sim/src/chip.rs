//! Per-chip (LUN) state: blocks and the per-plane timelines.

use crate::block::Block;
use crate::clock::SimTime;

/// The timing state of one plane: when its NAND array finishes its current
/// operation and when the plane as a whole (array + page register) goes idle.
///
/// The two differ only for reads: the NAND phase ends at `nand_free` but the
/// page register — and with it the plane — stays occupied until the page has
/// crossed the channel (`free`). Cache-mode reads chain on `nand_free`,
/// everything else chains on `free`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct PlaneTimeline {
    nand_free: SimTime,
    free: SimTime,
}

/// One NAND chip (die/LUN): a set of blocks plus one timeline per plane.
///
/// A plane is the unit of operation-level parallelism inside a chip: two
/// operations on the same plane serialise, operations on different planes of
/// the same chip overlap (subject to the shared channel bus), and operations
/// on different chips overlap fully. Multi-plane commands occupy several
/// planes of a chip with a single NAND slot.
#[derive(Debug, Clone)]
pub struct Chip {
    blocks: Vec<Block>,
    planes: Vec<PlaneTimeline>,
}

impl Chip {
    /// Creates a chip with `blocks` erased blocks of `pages_per_block` pages
    /// spread over `planes` planes (the block list is flat; the device maps
    /// plane-local block indices onto it).
    pub fn new(blocks: u32, pages_per_block: u32, planes: u32) -> Self {
        assert!(planes > 0, "a chip needs at least one plane");
        Chip {
            blocks: (0..blocks).map(|_| Block::new(pages_per_block)).collect(),
            planes: vec![PlaneTimeline::default(); planes as usize],
        }
    }

    /// Number of blocks on the chip.
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Number of planes on the chip.
    pub fn plane_count(&self) -> u32 {
        self.planes.len() as u32
    }

    /// Shared access to the block at `index` (chip-local index).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block(&self, index: u32) -> &Block {
        &self.blocks[index as usize]
    }

    /// Mutable access to the block at `index` (chip-local index).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block_mut(&mut self, index: u32) -> &mut Block {
        &mut self.blocks[index as usize]
    }

    /// The simulated time at which the *whole* chip becomes idle (the latest
    /// plane timeline — drain semantics).
    pub fn busy_until(&self) -> SimTime {
        self.planes
            .iter()
            .map(|p| p.free)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// The earliest time any plane of this chip is free — the time the chip
    /// can next *accept* an operation (issuability semantics: a chip is
    /// issuable as soon as one plane is free).
    pub fn next_plane_free(&self) -> SimTime {
        self.planes
            .iter()
            .map(|p| p.free)
            .min()
            .expect("a chip has at least one plane")
    }

    /// The time plane `plane` becomes fully idle (NAND array and register).
    pub fn plane_free(&self, plane: u32) -> SimTime {
        self.planes[plane as usize].free
    }

    /// The time plane `plane`'s NAND array becomes free (before any pending
    /// channel burst has drained) — what cache-mode reads chain on.
    pub fn plane_nand_free(&self, plane: u32) -> SimTime {
        self.planes[plane as usize].nand_free
    }

    /// Reserves plane `plane` for an operation issued at `issue` that takes
    /// `latency` once the plane is free. Returns the completion time. This is
    /// the generic whole-op reservation (erases, program NAND phases).
    pub fn occupy_plane(
        &mut self,
        plane: u32,
        issue: SimTime,
        latency: crate::Duration,
    ) -> SimTime {
        let p = &mut self.planes[plane as usize];
        let start = issue.max(p.free);
        let done = start + latency;
        p.nand_free = done;
        p.free = done;
        done
    }

    /// Records an operation's timeline on plane `plane` directly: the NAND
    /// phase ends at `nand_free`, the plane goes idle at `free` (the end of
    /// its channel burst for reads). The device computes the phases; the chip
    /// only stores them.
    pub fn reserve_plane(&mut self, plane: u32, nand_free: SimTime, free: SimTime) {
        let p = &mut self.planes[plane as usize];
        p.nand_free = nand_free;
        p.free = free;
    }

    /// Total number of free (programmable) pages across all blocks.
    pub fn free_pages(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.free_pages())).sum()
    }

    /// Total number of valid pages across all blocks.
    pub fn valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.valid_pages())).sum()
    }

    /// Sum of erase counts across all blocks (wear indicator).
    pub fn total_erases(&self) -> u64 {
        self.blocks.iter().map(Block::erase_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    #[test]
    fn occupy_serialises_operations_on_one_plane() {
        let mut chip = Chip::new(2, 4, 1);
        let d = Duration::from_micros(40);
        let t1 = chip.occupy_plane(0, SimTime::ZERO, d);
        assert_eq!(t1, SimTime::from_micros(40));
        // Issued "in the past" relative to the plane: must queue.
        let t2 = chip.occupy_plane(0, SimTime::from_micros(10), d);
        assert_eq!(t2, SimTime::from_micros(80));
        // Issued after the plane is idle: starts immediately.
        let t3 = chip.occupy_plane(0, SimTime::from_micros(200), d);
        assert_eq!(t3, SimTime::from_micros(240));
    }

    #[test]
    fn planes_have_independent_timelines() {
        let mut chip = Chip::new(4, 4, 2);
        let d = Duration::from_micros(100);
        let t0 = chip.occupy_plane(0, SimTime::ZERO, d);
        let t1 = chip.occupy_plane(1, SimTime::ZERO, d);
        assert_eq!(t0, t1, "independent planes overlap fully");
        assert_eq!(chip.busy_until(), t0);
        assert_eq!(chip.next_plane_free(), t0);
        let t2 = chip.occupy_plane(1, SimTime::ZERO, d);
        assert_eq!(t2, t1 + d, "same plane serialises");
        assert_eq!(chip.next_plane_free(), t0, "plane 0 frees first");
        assert_eq!(chip.busy_until(), t2, "drain waits for the busiest plane");
    }

    #[test]
    fn reserve_plane_splits_nand_and_register() {
        let mut chip = Chip::new(2, 4, 1);
        let nand = SimTime::from_micros(40);
        let xfer = SimTime::from_micros(45);
        chip.reserve_plane(0, nand, xfer);
        assert_eq!(chip.plane_nand_free(0), nand);
        assert_eq!(chip.plane_free(0), xfer);
        assert_eq!(chip.busy_until(), xfer);
    }

    #[test]
    fn page_counters_aggregate_blocks() {
        let mut chip = Chip::new(2, 4, 1);
        assert_eq!(chip.free_pages(), 8);
        chip.block_mut(0).program(0);
        chip.block_mut(1).program(0);
        chip.block_mut(1).program(1);
        assert_eq!(chip.free_pages(), 5);
        assert_eq!(chip.valid_pages(), 3);
        chip.block_mut(1).invalidate(0);
        assert_eq!(chip.valid_pages(), 2);
    }

    #[test]
    fn erase_counter_aggregates() {
        let mut chip = Chip::new(3, 2, 1);
        chip.block_mut(0).erase();
        chip.block_mut(0).erase();
        chip.block_mut(2).erase();
        assert_eq!(chip.total_erases(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one plane")]
    fn zero_planes_rejected() {
        Chip::new(1, 1, 0);
    }
}
