//! # ssd-sim
//!
//! A discrete-event NAND flash SSD device simulator.
//!
//! This crate is the substrate that replaces FEMU (the QEMU-based SSD emulator
//! used by the LearnedFTL paper). It models exactly the properties the paper's
//! evaluation depends on:
//!
//! * the **geometry tree** of an SSD (channels → chips → planes → blocks →
//!   pages) and the physical page number (PPN) codec over it
//!   ([`Geometry`], [`PhysAddr`]),
//! * **per-chip and per-channel timelines** so that concurrent flash
//!   operations queue on parallel units exactly like the paper's 8×8-chip
//!   device ([`FlashDevice`]),
//! * the **latency model** (40 µs read / 200 µs program / 2 ms erase by
//!   default, [`LatencyConfig`]),
//! * the **page/block state machine** (free → valid → invalid → erased) and
//!   per-page **OOB metadata** used by the FTLs ([`OobData`]),
//! * **operation and energy accounting** ([`DeviceStats`]).
//!
//! The device is purely a mechanism: it does not know anything about logical
//! addresses, mapping tables or garbage collection. Flash translation layers
//! built on top (see the `ftl-base`, `baselines` and `learnedftl` crates) drive
//! it through [`FlashDevice::read_page`], [`FlashDevice::program_page`] and
//! [`FlashDevice::erase_block`].
//!
//! ## Example
//!
//! ```
//! use ssd_sim::{FlashDevice, SsdConfig, SimTime, OobData};
//!
//! let mut dev = FlashDevice::new(SsdConfig::tiny());
//! let ppn = 0;
//! let t0 = SimTime::ZERO;
//! let done = dev.program_page(ppn, OobData::mapped(42), t0).unwrap();
//! let done = dev.read_page(ppn, done).unwrap();
//! assert!(done > t0);
//! assert_eq!(dev.oob(ppn).unwrap().lpn, Some(42));
//! ```

mod address;
mod block;
mod chip;
mod clock;
mod config;
mod device;
mod error;
mod geometry;
mod latency;
mod oob;
mod stats;
pub mod trace;
pub mod wallclock;

pub use address::{ppn_to_vppn, vppn_to_ppn, PhysAddr, Ppn, Vppn};
pub use block::{Block, BlockState};
pub use chip::Chip;
pub use clock::{Duration, SimTime};
pub use config::SsdConfig;
pub use device::{FlashDevice, QueuedCommand, StagedOp};
pub use error::{DeviceError, DeviceResult};
pub use geometry::Geometry;
pub use latency::LatencyConfig;
pub use oob::OobData;
pub use stats::{DeviceStats, FlashOp};
pub use trace::{TraceBuffer, TraceData, TraceEvent, TraceReadClass, TraceSink};

/// The page state of a single physical flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageState {
    /// The page has been erased and never programmed since.
    #[default]
    Free,
    /// The page holds live data referenced by the mapping table.
    Valid,
    /// The page was programmed but its data has since been superseded.
    Invalid,
}

impl std::fmt::Display for PageState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PageState::Free => "free",
            PageState::Valid => "valid",
            PageState::Invalid => "invalid",
        };
        f.write_str(s)
    }
}
