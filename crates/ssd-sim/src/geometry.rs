//! SSD geometry: the hierarchical structure of parallel units.
//!
//! An SSD is organised as a tree: channels at the top, then chips (LUNs) per
//! channel, planes per chip, blocks per plane and pages per block. The
//! [`Geometry`] type captures the fan-out at every level and provides the
//! conversions that the physical-address codec ([`crate::PhysAddr`]) and the
//! virtual-PPN representation rely on.

/// The static shape of a simulated SSD.
///
/// The paper's device is `8 channels × 8 chips × 1 plane × 256 blocks × 512
/// pages × 4 KiB` (32 GiB raw). Use [`crate::SsdConfig::paper`] for that
/// configuration and [`crate::SsdConfig::small`] for a scaled version that
/// keeps every ratio but runs quickly.
///
/// ```
/// use ssd_sim::Geometry;
/// let g = Geometry::new(8, 8, 1, 256, 512, 4096);
/// assert_eq!(g.total_pages(), 8 * 8 * 256 * 512);
/// assert_eq!(g.raw_bytes(), 8 * 8 * 256 * 512 * 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Number of channels.
    pub channels: u32,
    /// Number of chips (LUNs) attached to each channel.
    pub chips_per_channel: u32,
    /// Number of planes inside each chip.
    pub planes_per_chip: u32,
    /// Number of blocks inside each plane.
    pub blocks_per_plane: u32,
    /// Number of pages inside each block.
    pub pages_per_block: u32,
    /// Page size in bytes (the paper uses 4 KiB).
    pub page_size: u32,
}

impl Geometry {
    /// Creates a new geometry description.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        channels: u32,
        chips_per_channel: u32,
        planes_per_chip: u32,
        blocks_per_plane: u32,
        pages_per_block: u32,
        page_size: u32,
    ) -> Self {
        assert!(channels > 0, "channels must be non-zero");
        assert!(chips_per_channel > 0, "chips_per_channel must be non-zero");
        assert!(planes_per_chip > 0, "planes_per_chip must be non-zero");
        assert!(
            planes_per_chip <= 32,
            "planes_per_chip must fit a 32-bit plane mask"
        );
        assert!(blocks_per_plane > 0, "blocks_per_plane must be non-zero");
        assert!(pages_per_block > 0, "pages_per_block must be non-zero");
        assert!(page_size > 0, "page_size must be non-zero");
        Geometry {
            channels,
            chips_per_channel,
            planes_per_chip,
            blocks_per_plane,
            pages_per_block,
            page_size,
        }
    }

    /// Total number of chips (parallel units that can execute one flash
    /// operation at a time).
    pub fn total_chips(&self) -> u64 {
        u64::from(self.channels) * u64::from(self.chips_per_channel)
    }

    /// Total number of planes in the device.
    pub fn total_planes(&self) -> u64 {
        self.total_chips() * u64::from(self.planes_per_chip)
    }

    /// Total number of physical blocks in the device.
    pub fn total_blocks(&self) -> u64 {
        self.total_planes() * u64::from(self.blocks_per_plane)
    }

    /// Total number of physical pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * u64::from(self.pages_per_block)
    }

    /// Raw capacity of the device in bytes (including over-provisioning).
    pub fn raw_bytes(&self) -> u64 {
        self.total_pages() * u64::from(self.page_size)
    }

    /// Number of pages that belong to a single plane.
    pub fn pages_per_plane(&self) -> u64 {
        u64::from(self.blocks_per_plane) * u64::from(self.pages_per_block)
    }

    /// Number of pages that belong to a single chip.
    pub fn pages_per_chip(&self) -> u64 {
        self.pages_per_plane() * u64::from(self.planes_per_chip)
    }

    /// Number of blocks that belong to a single chip.
    pub fn blocks_per_chip(&self) -> u64 {
        u64::from(self.blocks_per_plane) * u64::from(self.planes_per_chip)
    }

    /// Returns the flat chip index (0..total_chips) for a channel/chip pair.
    ///
    /// # Panics
    ///
    /// Panics if `channel` or `chip` is out of range.
    pub fn chip_index(&self, channel: u32, chip: u32) -> u64 {
        assert!(channel < self.channels, "channel out of range");
        assert!(chip < self.chips_per_channel, "chip out of range");
        u64::from(channel) * u64::from(self.chips_per_channel) + u64::from(chip)
    }

    /// Number of logical pages exposed to the host given an over-provisioning
    /// ratio in `[0, 1)`. The paper's device exposes 32 GiB of a 34 GiB raw
    /// device, i.e. roughly 6 % OP.
    pub fn logical_pages(&self, op_ratio: f64) -> u64 {
        assert!((0.0..1.0).contains(&op_ratio), "op_ratio must be in [0,1)");
        let total = self.total_pages() as f64;
        (total * (1.0 - op_ratio)).floor() as u64
    }
}

impl std::fmt::Display for Geometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}ch x {}chip x {}pl x {}blk x {}pg x {}B ({} MiB raw)",
            self.channels,
            self.chips_per_channel,
            self.planes_per_chip,
            self.blocks_per_plane,
            self.pages_per_block,
            self.page_size,
            self.raw_bytes() / (1024 * 1024)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Geometry {
        Geometry::new(8, 8, 1, 256, 512, 4096)
    }

    #[test]
    fn paper_geometry_totals_match_paper() {
        let g = paper();
        // The paper states 8,388,608 physical pages (Fig. 11).
        assert_eq!(g.total_pages(), 8_388_608);
        assert_eq!(g.total_chips(), 64);
        assert_eq!(g.raw_bytes(), 32 * 1024 * 1024 * 1024);
    }

    #[test]
    fn per_chip_counts() {
        let g = paper();
        assert_eq!(g.pages_per_chip(), 256 * 512);
        assert_eq!(g.blocks_per_chip(), 256);
        assert_eq!(g.pages_per_plane(), 256 * 512);
    }

    #[test]
    fn chip_index_is_dense_and_unique() {
        let g = Geometry::new(2, 3, 1, 4, 8, 4096);
        let mut seen = std::collections::HashSet::new();
        for ch in 0..2 {
            for chip in 0..3 {
                let idx = g.chip_index(ch, chip);
                assert!(idx < g.total_chips());
                assert!(seen.insert(idx));
            }
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    #[should_panic(expected = "channel out of range")]
    fn chip_index_rejects_bad_channel() {
        paper().chip_index(8, 0);
    }

    #[test]
    fn logical_pages_respects_op() {
        let g = paper();
        let logical = g.logical_pages(0.0625);
        assert!(logical < g.total_pages());
        assert_eq!(logical, (8_388_608.0 * 0.9375) as u64);
    }

    #[test]
    #[should_panic(expected = "pages_per_block must be non-zero")]
    fn zero_dimension_rejected() {
        Geometry::new(1, 1, 1, 1, 0, 4096);
    }
}
