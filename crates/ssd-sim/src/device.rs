//! The flash device: page/block state plus the discrete-event timing model.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::address::{PhysAddr, Ppn};
use crate::block::Block;
use crate::chip::Chip;
use crate::clock::SimTime;
use crate::config::SsdConfig;
use crate::error::{DeviceError, DeviceResult};
use crate::geometry::Geometry;
use crate::oob::OobData;
use crate::stats::{DeviceStats, FlashOp};
use crate::PageState;

/// A simulated NAND flash device.
///
/// The device models:
///
/// * **state** — every page is free, valid or invalid; blocks are programmed
///   in order and erased as a whole,
/// * **timing** — each chip executes one NAND operation at a time and each
///   channel transfers one page at a time, so operations issued concurrently
///   against different chips overlap while operations against the same chip
///   queue,
/// * **metadata** — the OOB area of every page,
/// * **accounting** — counts of reads/programs/erases, split into host-data
///   and translation-page traffic.
///
/// The device knows nothing about logical addresses: the FTL layers own the
/// mapping, allocation and garbage-collection policies.
///
/// # Example
///
/// ```
/// use ssd_sim::{FlashDevice, SsdConfig, SimTime, OobData};
///
/// let mut dev = FlashDevice::new(SsdConfig::tiny());
/// let done_w = dev.program_page(0, OobData::mapped(9), SimTime::ZERO)?;
/// let done_r = dev.read_page(0, done_w)?;
/// assert!(done_r > done_w);
/// assert_eq!(dev.stats().programs, 1);
/// assert_eq!(dev.stats().reads, 1);
/// # Ok::<(), ssd_sim::DeviceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlashDevice {
    config: SsdConfig,
    chips: Vec<Chip>,
    channel_busy_until: Vec<SimTime>,
    oob: Vec<OobData>,
    stats: DeviceStats,
    next_cmd_id: u64,
    in_flight: BinaryHeap<Reverse<QueuedCommand>>,
    staging: Option<Vec<StagedOp>>,
}

/// One flash operation whose state effects have been applied under
/// [`FlashDevice::begin_staging`] but whose flash *time* has not been charged
/// yet. The recorded parallel units let a scheduler replay the timing later
/// with [`FlashDevice::charge_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedOp {
    /// The NAND operation that was staged.
    pub op: FlashOp,
    /// Flat index of the chip the operation occupies.
    pub chip: u64,
    /// Channel the operation's data crosses (the chip's channel for erases).
    pub channel: u32,
}

/// A flash command accepted by the enqueue/poll interface
/// ([`FlashDevice::enqueue_read`] and friends): the command's identity, the
/// parallel units it occupies and its timing.
///
/// Commands are totally ordered by `(completes_at, id)`, so collections of
/// them sort into completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueuedCommand {
    /// Completion time on the simulated clock (ordering field; see type docs).
    pub completes_at: SimTime,
    /// Device-assigned command identifier, unique for the device's lifetime.
    pub id: u64,
    /// The NAND operation the command performs.
    pub op: FlashOp,
    /// Flat index of the chip the command occupies.
    pub chip: u64,
    /// Channel the command's data crosses (the chip's channel for erases).
    pub channel: u32,
    /// The time the command was enqueued.
    pub issued: SimTime,
}

impl QueuedCommand {
    /// The command's service time: enqueue to completion, including any time
    /// spent queued behind other operations on the same chip or channel.
    pub fn latency(&self) -> crate::Duration {
        self.completes_at - self.issued
    }
}

impl FlashDevice {
    /// Creates a fresh (fully erased) device.
    pub fn new(config: SsdConfig) -> Self {
        let g = config.geometry;
        let blocks_per_chip = g.blocks_per_chip() as u32;
        let chips = (0..g.total_chips())
            .map(|_| Chip::new(blocks_per_chip, g.pages_per_block))
            .collect();
        FlashDevice {
            config,
            chips,
            channel_busy_until: vec![SimTime::ZERO; g.channels as usize],
            oob: vec![OobData::default(); g.total_pages() as usize],
            stats: DeviceStats::new(),
            next_cmd_id: 0,
            in_flight: BinaryHeap::new(),
            staging: None,
        }
    }

    /// Enters *staging* mode: subsequent `read_page` / `program_page` /
    /// `erase_block` calls apply their state effects and statistics
    /// immediately but charge **no flash time** (they return their `issue`
    /// argument unchanged) and are recorded instead. [`FlashDevice::end_staging`]
    /// hands the recorded operations back so a scheduler can replay their
    /// timing later with [`FlashDevice::charge_op`] — this is how scheduled
    /// garbage collection commits a collection's logical outcome atomically
    /// while its flash traffic contends with host commands over time.
    ///
    /// # Panics
    ///
    /// Panics if the device is already staging.
    pub fn begin_staging(&mut self) {
        assert!(self.staging.is_none(), "staging windows must not nest");
        self.staging = Some(Vec::new());
    }

    /// Leaves staging mode, returning every operation staged since
    /// [`FlashDevice::begin_staging`] in execution order.
    ///
    /// # Panics
    ///
    /// Panics if the device is not staging.
    pub fn end_staging(&mut self) -> Vec<StagedOp> {
        self.staging
            .take()
            .expect("end_staging requires an open staging window")
    }

    /// Whether a staging window is open.
    pub fn is_staging(&self) -> bool {
        self.staging.is_some()
    }

    /// Number of operations recorded in the open staging window (zero when
    /// not staging). Callers use this to mark boundaries inside a staged
    /// batch, e.g. the end of one GC victim's work.
    pub fn staged_len(&self) -> usize {
        self.staging.as_ref().map_or(0, Vec::len)
    }

    /// Occupies the timing resources of one flash operation — the chip for
    /// its NAND phase and the channel for its transfer phase, in the same
    /// order as the blocking calls — without touching page state or
    /// statistics. This is the replay half of the stage/charge split: state
    /// was already applied under [`FlashDevice::begin_staging`].
    pub fn charge_op(&mut self, op: FlashOp, chip: u64, channel: u32, issue: SimTime) -> SimTime {
        let lat = self.config.latency;
        match op {
            FlashOp::Read => {
                let nand_done = self.chips[chip as usize].occupy(issue, lat.read);
                self.occupy_channel(channel, nand_done, lat.channel_transfer)
            }
            FlashOp::Program => {
                let bus_done = self.occupy_channel(channel, issue, lat.channel_transfer);
                self.chips[chip as usize].occupy(bus_done, lat.program)
            }
            FlashOp::Erase => self.chips[chip as usize].occupy(issue, lat.erase),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.config.geometry
    }

    /// Operation statistics accumulated so far.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Resets the operation statistics to zero (state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::new();
    }

    /// Reads the page at `ppn`, issued at `issue`. Returns the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist and
    /// [`DeviceError::ReadOnFreePage`] if the page has never been programmed.
    pub fn read_page(&mut self, ppn: Ppn, issue: SimTime) -> DeviceResult<SimTime> {
        let addr = self.check_ppn(ppn)?;
        if self.page_state(ppn)? == PageState::Free {
            return Err(DeviceError::ReadOnFreePage { ppn });
        }
        let translation = self.oob[ppn as usize].is_translation;
        self.stats.record(FlashOp::Read, translation);
        let g = self.config.geometry;
        if let Some(staged) = &mut self.staging {
            staged.push(StagedOp {
                op: FlashOp::Read,
                chip: addr.chip_index(&g),
                channel: addr.channel,
            });
            return Ok(issue);
        }
        // NAND array read on the chip, then the page crosses the channel bus.
        let lat = self.config.latency;
        let chip = &mut self.chips[addr.chip_index(&g) as usize];
        let nand_done = chip.occupy(issue, lat.read);
        Ok(self.occupy_channel(addr.channel, nand_done, lat.channel_transfer))
    }

    /// Programs the page at `ppn` with `oob` metadata, issued at `issue`.
    /// Returns the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist and
    /// [`DeviceError::ProgramOnUsedPage`] if the page is not the next free
    /// page of its block (NAND requires in-order programming).
    pub fn program_page(
        &mut self,
        ppn: Ppn,
        oob: OobData,
        issue: SimTime,
    ) -> DeviceResult<SimTime> {
        let addr = self.check_ppn(ppn)?;
        let g = self.config.geometry;
        let lat = self.config.latency;
        let chip_idx = addr.chip_index(&g) as usize;
        let local_block = Self::local_block(&addr, &g);
        {
            let block = self.chips[chip_idx].block_mut(local_block);
            if !block.program(addr.page) {
                return Err(DeviceError::ProgramOnUsedPage { ppn });
            }
        }
        self.oob[ppn as usize] = oob;
        self.stats.record(FlashOp::Program, oob.is_translation);
        if let Some(staged) = &mut self.staging {
            staged.push(StagedOp {
                op: FlashOp::Program,
                chip: chip_idx as u64,
                channel: addr.channel,
            });
            return Ok(issue);
        }
        // Data crosses the channel bus first, then the NAND array programs it.
        let bus_done = self.occupy_channel(addr.channel, issue, lat.channel_transfer);
        let chip = &mut self.chips[chip_idx];
        Ok(chip.occupy(bus_done, lat.program))
    }

    /// Marks the page at `ppn` invalid (superseded). This is a metadata-only
    /// operation with no timing cost.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist. It is
    /// not an error to invalidate a page twice or to invalidate a free page —
    /// the call is then a no-op — because FTL write paths routinely overwrite
    /// logical pages whose previous physical location is already stale.
    pub fn invalidate_page(&mut self, ppn: Ppn) -> DeviceResult<()> {
        let addr = self.check_ppn(ppn)?;
        let g = self.config.geometry;
        let chip_idx = addr.chip_index(&g) as usize;
        let local_block = Self::local_block(&addr, &g);
        self.chips[chip_idx]
            .block_mut(local_block)
            .invalidate(addr.page);
        Ok(())
    }

    /// Erases the block identified by the device-wide flat block index.
    /// Returns the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BlockOutOfRange`] if the block does not exist
    /// and [`DeviceError::EraseWithValidPages`] if the block still holds valid
    /// pages (the FTL must relocate them first).
    pub fn erase_block(&mut self, flat_block: u64, issue: SimTime) -> DeviceResult<SimTime> {
        let g = self.config.geometry;
        let total_blocks = g.total_blocks();
        if flat_block >= total_blocks {
            return Err(DeviceError::BlockOutOfRange {
                block: flat_block,
                total: total_blocks,
            });
        }
        let blocks_per_chip = g.blocks_per_chip();
        let chip_idx = (flat_block / blocks_per_chip) as usize;
        let local_block = (flat_block % blocks_per_chip) as u32;
        let valid = self.chips[chip_idx].block(local_block).valid_pages();
        if valid > 0 {
            return Err(DeviceError::EraseWithValidPages {
                block: flat_block,
                valid,
            });
        }
        self.chips[chip_idx].block_mut(local_block).erase();
        // Clear the OOB of every page in the block.
        let first_ppn = self.first_ppn_of_flat_block(flat_block);
        for p in 0..u64::from(g.pages_per_block) {
            self.oob[(first_ppn + p) as usize] = OobData::default();
        }
        self.stats.record(FlashOp::Erase, false);
        if let Some(staged) = &mut self.staging {
            let channel = (chip_idx as u64 / u64::from(g.chips_per_channel)) as u32;
            staged.push(StagedOp {
                op: FlashOp::Erase,
                chip: chip_idx as u64,
                channel,
            });
            return Ok(issue);
        }
        let lat = self.config.latency;
        Ok(self.chips[chip_idx].occupy(issue, lat.erase))
    }

    /// Enqueues a page read, issued at `issue`. The non-blocking twin of
    /// [`FlashDevice::read_page`]: the command's state change and timing are
    /// identical, but completion is delivered through
    /// [`FlashDevice::poll_completions`] instead of the return value, so
    /// callers can keep many commands in flight and reap them out of order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashDevice::read_page`].
    pub fn enqueue_read(&mut self, ppn: Ppn, issue: SimTime) -> DeviceResult<QueuedCommand> {
        let done = self.read_page(ppn, issue)?;
        let g = self.config.geometry;
        let addr = PhysAddr::from_ppn(ppn, &g);
        Ok(self.track_command(
            FlashOp::Read,
            addr.chip_index(&g),
            addr.channel,
            issue,
            done,
        ))
    }

    /// Enqueues a page program, issued at `issue`. The non-blocking twin of
    /// [`FlashDevice::program_page`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashDevice::program_page`].
    pub fn enqueue_program(
        &mut self,
        ppn: Ppn,
        oob: OobData,
        issue: SimTime,
    ) -> DeviceResult<QueuedCommand> {
        let done = self.program_page(ppn, oob, issue)?;
        let g = self.config.geometry;
        let addr = PhysAddr::from_ppn(ppn, &g);
        Ok(self.track_command(
            FlashOp::Program,
            addr.chip_index(&g),
            addr.channel,
            issue,
            done,
        ))
    }

    /// Enqueues a block erase, issued at `issue`. The non-blocking twin of
    /// [`FlashDevice::erase_block`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashDevice::erase_block`].
    pub fn enqueue_erase(
        &mut self,
        flat_block: u64,
        issue: SimTime,
    ) -> DeviceResult<QueuedCommand> {
        let g = self.config.geometry;
        let done = self.erase_block(flat_block, issue)?;
        let chip = flat_block / g.blocks_per_chip();
        let channel = (chip / u64::from(g.chips_per_channel)) as u32;
        Ok(self.track_command(FlashOp::Erase, chip, channel, issue, done))
    }

    /// Pops every enqueued command that has completed by `now`, in completion
    /// order. Commands enqueued through the `enqueue_*` methods stay in the
    /// device's in-flight set until reaped here.
    pub fn poll_completions(&mut self, now: SimTime) -> Vec<QueuedCommand> {
        let mut done = Vec::new();
        while let Some(Reverse(cmd)) = self.in_flight.peek() {
            if cmd.completes_at > now {
                break;
            }
            let Reverse(cmd) = self.in_flight.pop().expect("peeked entry exists");
            done.push(cmd);
        }
        done
    }

    /// Number of enqueued commands not yet reaped via
    /// [`FlashDevice::poll_completions`].
    pub fn in_flight_commands(&self) -> usize {
        self.in_flight.len()
    }

    /// Completion time of the earliest unreaped command, or `None` when the
    /// in-flight set is empty. Event loops use this to decide how far the
    /// simulated clock may jump.
    pub fn next_completion_time(&self) -> Option<SimTime> {
        self.in_flight.peek().map(|Reverse(cmd)| cmd.completes_at)
    }

    fn track_command(
        &mut self,
        op: FlashOp,
        chip: u64,
        channel: u32,
        issued: SimTime,
        completes_at: SimTime,
    ) -> QueuedCommand {
        debug_assert!(
            self.staging.is_none(),
            "the enqueue/poll interface must not be used inside a staging window"
        );
        let cmd = QueuedCommand {
            completes_at,
            id: self.next_cmd_id,
            op,
            chip,
            channel,
            issued,
        };
        self.next_cmd_id += 1;
        self.in_flight.push(Reverse(cmd));
        cmd
    }

    /// The state of the page at `ppn`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist.
    pub fn page_state(&self, ppn: Ppn) -> DeviceResult<PageState> {
        let addr = self.check_ppn(ppn)?;
        let g = self.config.geometry;
        let chip_idx = addr.chip_index(&g) as usize;
        let local_block = Self::local_block(&addr, &g);
        Ok(self.chips[chip_idx]
            .block(local_block)
            .page_state(addr.page))
    }

    /// The OOB metadata of the page at `ppn`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist.
    pub fn oob(&self, ppn: Ppn) -> DeviceResult<&OobData> {
        self.check_ppn(ppn)?;
        Ok(&self.oob[ppn as usize])
    }

    /// Shared access to the block metadata at a flat block index.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BlockOutOfRange`] if the block does not exist.
    pub fn block_info(&self, flat_block: u64) -> DeviceResult<&Block> {
        let g = self.config.geometry;
        if flat_block >= g.total_blocks() {
            return Err(DeviceError::BlockOutOfRange {
                block: flat_block,
                total: g.total_blocks(),
            });
        }
        let blocks_per_chip = g.blocks_per_chip();
        let chip_idx = (flat_block / blocks_per_chip) as usize;
        let local_block = (flat_block % blocks_per_chip) as u32;
        Ok(self.chips[chip_idx].block(local_block))
    }

    /// The first PPN that belongs to the block with the given flat index.
    pub fn first_ppn_of_flat_block(&self, flat_block: u64) -> Ppn {
        flat_block * u64::from(self.config.geometry.pages_per_block)
    }

    /// The flat block index that contains `ppn`.
    pub fn flat_block_of_ppn(&self, ppn: Ppn) -> u64 {
        ppn / u64::from(self.config.geometry.pages_per_block)
    }

    /// The next programmable page (as a PPN) inside the block with the given
    /// flat index, or `None` if the block is full.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BlockOutOfRange`] if the block does not exist.
    pub fn next_free_ppn_in_block(&self, flat_block: u64) -> DeviceResult<Option<Ppn>> {
        let block = self.block_info(flat_block)?;
        Ok(block
            .write_pointer()
            .map(|page| self.first_ppn_of_flat_block(flat_block) + u64::from(page)))
    }

    /// The simulated time at which the chip holding `ppn` becomes idle.
    pub fn chip_busy_until(&self, ppn: Ppn) -> SimTime {
        let g = self.config.geometry;
        let addr = PhysAddr::from_ppn(ppn, &g);
        self.chips[addr.chip_index(&g) as usize].busy_until()
    }

    /// The busiest (largest) `busy_until` across all chips: the time at which
    /// the entire device has drained.
    pub fn drain_time(&self) -> SimTime {
        self.chips
            .iter()
            .map(Chip::busy_until)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Per-chip free page counts, indexed by flat chip index. Dynamic
    /// allocators use this to pick the least-loaded chip.
    pub fn free_pages_per_chip(&self) -> Vec<u64> {
        self.chips.iter().map(Chip::free_pages).collect()
    }

    /// Per-chip busy-until times, indexed by flat chip index.
    pub fn busy_until_per_chip(&self) -> Vec<SimTime> {
        self.chips.iter().map(Chip::busy_until).collect()
    }

    /// Number of fully erased blocks in the whole device.
    pub fn free_block_count(&self) -> u64 {
        let g = self.config.geometry;
        (0..g.total_blocks())
            .filter(|&b| {
                self.block_info(b)
                    .map(|blk| blk.state() == crate::BlockState::Free)
                    .unwrap_or(false)
            })
            .count() as u64
    }

    /// Total erase operations executed (wear indicator).
    pub fn total_erases(&self) -> u64 {
        self.chips.iter().map(Chip::total_erases).sum()
    }

    fn occupy_channel(
        &mut self,
        channel: u32,
        issue: SimTime,
        transfer: crate::Duration,
    ) -> SimTime {
        let busy = &mut self.channel_busy_until[channel as usize];
        let start = issue.max(*busy);
        let done = start + transfer;
        *busy = done;
        done
    }

    fn check_ppn(&self, ppn: Ppn) -> DeviceResult<PhysAddr> {
        let g = self.config.geometry;
        if ppn >= g.total_pages() {
            return Err(DeviceError::PpnOutOfRange {
                ppn,
                total: g.total_pages(),
            });
        }
        Ok(PhysAddr::from_ppn(ppn, &g))
    }

    fn local_block(addr: &PhysAddr, g: &Geometry) -> u32 {
        addr.plane * g.blocks_per_plane + addr.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    fn dev() -> FlashDevice {
        FlashDevice::new(SsdConfig::tiny())
    }

    #[test]
    fn program_then_read_roundtrips_oob() {
        let mut d = dev();
        d.program_page(0, OobData::mapped(123), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.oob(0).unwrap().lpn, Some(123));
        assert_eq!(d.page_state(0).unwrap(), PageState::Valid);
        let done = d.read_page(0, SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn read_free_page_is_error() {
        let mut d = dev();
        assert_eq!(
            d.read_page(5, SimTime::ZERO),
            Err(DeviceError::ReadOnFreePage { ppn: 5 })
        );
    }

    #[test]
    fn program_out_of_order_is_error() {
        let mut d = dev();
        // Page 1 of block 0 without programming page 0 first.
        assert_eq!(
            d.program_page(1, OobData::mapped(1), SimTime::ZERO),
            Err(DeviceError::ProgramOnUsedPage { ppn: 1 })
        );
    }

    #[test]
    fn reprogram_is_error() {
        let mut d = dev();
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            d.program_page(0, OobData::mapped(2), SimTime::ZERO),
            Err(DeviceError::ProgramOnUsedPage { ppn: 0 })
        );
    }

    #[test]
    fn erase_requires_no_valid_pages() {
        let mut d = dev();
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            d.erase_block(0, SimTime::ZERO),
            Err(DeviceError::EraseWithValidPages { .. })
        ));
        d.invalidate_page(0).unwrap();
        let done = d.erase_block(0, SimTime::ZERO).unwrap();
        assert!(done >= SimTime::from_millis(2));
        assert_eq!(d.page_state(0).unwrap(), PageState::Free);
        assert_eq!(d.oob(0).unwrap().lpn, None);
        // The block is programmable again.
        d.program_page(0, OobData::mapped(9), SimTime::ZERO)
            .unwrap();
    }

    #[test]
    fn operations_on_same_chip_queue() {
        let mut d = dev();
        let g = *d.geometry();
        // Two pages on the same chip (channel 0, chip 0): block 0 page 0 and 1.
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        d.program_page(1, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        let t1 = d.read_page(0, SimTime::ZERO).unwrap();
        let t2 = d.read_page(1, SimTime::ZERO).unwrap();
        assert!(t2 > t1, "same-chip reads must serialise");
        // Two pages on different chips overlap: read completion times differ
        // by less than a full read latency.
        let other_chip_ppn = g.pages_per_chip(); // first page of chip 1
        let addr = PhysAddr::from_ppn(other_chip_ppn, &g);
        assert_ne!(addr.chip_index(&g), 0);
    }

    #[test]
    fn operations_on_different_chips_overlap() {
        let cfg = SsdConfig::tiny();
        let g = cfg.geometry;
        let mut d = FlashDevice::new(cfg);
        let chip0_ppn = 0;
        let chip1_ppn = g.pages_per_chip();
        d.program_page(chip0_ppn, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        d.program_page(chip1_ppn, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        let base = d.drain_time();
        let t1 = d.read_page(chip0_ppn, base).unwrap();
        let t2 = d.read_page(chip1_ppn, base).unwrap();
        // Both reads finish within ~one read latency + transfers of each other.
        let spread = if t1 > t2 { t1 - t2 } else { t2 - t1 };
        assert!(spread < Duration::from_micros(40));
    }

    #[test]
    fn stats_track_translation_traffic() {
        let mut d = dev();
        d.program_page(0, OobData::translation(), SimTime::ZERO)
            .unwrap();
        d.program_page(1, OobData::mapped(4), SimTime::ZERO)
            .unwrap();
        d.read_page(0, SimTime::ZERO).unwrap();
        d.read_page(1, SimTime::ZERO).unwrap();
        let s = d.stats();
        assert_eq!(s.programs, 2);
        assert_eq!(s.translation_programs, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.translation_reads, 1);
        assert_eq!(s.data_reads(), 1);
    }

    #[test]
    fn next_free_ppn_walks_the_block() {
        let mut d = dev();
        assert_eq!(d.next_free_ppn_in_block(0).unwrap(), Some(0));
        d.program_page(0, OobData::mapped(0), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.next_free_ppn_in_block(0).unwrap(), Some(1));
        let pages = d.geometry().pages_per_block;
        for p in 1..pages {
            d.program_page(u64::from(p), OobData::mapped(u64::from(p)), SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(d.next_free_ppn_in_block(0).unwrap(), None);
    }

    #[test]
    fn free_block_count_decreases_with_programs() {
        let mut d = dev();
        let total = d.geometry().total_blocks();
        assert_eq!(d.free_block_count(), total);
        d.program_page(0, OobData::mapped(0), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.free_block_count(), total - 1);
    }

    #[test]
    fn enqueue_matches_blocking_timing() {
        let mut queued = dev();
        let mut blocking = dev();
        let ops: &[(Ppn, u64)] = &[(0, 10), (1, 11), (2, 12)];
        for &(ppn, lpn) in ops {
            let c = queued
                .enqueue_program(ppn, OobData::mapped(lpn), SimTime::ZERO)
                .unwrap();
            let done = blocking
                .program_page(ppn, OobData::mapped(lpn), SimTime::ZERO)
                .unwrap();
            assert_eq!(
                c.completes_at, done,
                "enqueue and blocking paths must agree"
            );
        }
        let c = queued.enqueue_read(0, SimTime::ZERO).unwrap();
        let done = blocking.read_page(0, SimTime::ZERO).unwrap();
        assert_eq!(c.completes_at, done);
        assert_eq!(c.op, FlashOp::Read);
        assert!(c.latency() > Duration::ZERO);
    }

    #[test]
    fn poll_reaps_in_completion_order() {
        let mut d = dev();
        let g = *d.geometry();
        // One program per chip: they overlap, then a second on chip 0 queues.
        let chip0 = 0;
        let chip1 = g.pages_per_chip();
        d.enqueue_program(chip1, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        d.enqueue_program(chip0, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        d.enqueue_program(chip0 + 1, OobData::mapped(3), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.in_flight_commands(), 3);
        let first = d.next_completion_time().expect("commands in flight");
        assert!(
            d.poll_completions(SimTime::ZERO).is_empty(),
            "nothing done at t=0"
        );
        let done = d.poll_completions(first);
        assert!(!done.is_empty());
        let all = d.poll_completions(d.drain_time());
        assert_eq!(
            done.len() + all.len(),
            3,
            "every command completes exactly once"
        );
        let mut times: Vec<SimTime> = done
            .iter()
            .chain(all.iter())
            .map(|c| c.completes_at)
            .collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "completions must arrive in completion order");
        times.dedup();
        assert_eq!(
            times.len(),
            3,
            "same-chip commands must not share completion times"
        );
        assert_eq!(d.in_flight_commands(), 0);
    }

    #[test]
    fn enqueue_errors_leave_no_ghost_commands() {
        let mut d = dev();
        assert!(d.enqueue_read(5, SimTime::ZERO).is_err());
        assert!(d
            .enqueue_program(1, OobData::mapped(1), SimTime::ZERO)
            .is_err());
        assert_eq!(d.in_flight_commands(), 0);
        assert_eq!(d.next_completion_time(), None);
    }

    #[test]
    fn staging_applies_state_without_charging_time() {
        let mut d = dev();
        d.begin_staging();
        let t = d
            .program_page(0, OobData::mapped(7), SimTime::from_micros(5))
            .unwrap();
        assert_eq!(t, SimTime::from_micros(5), "staged ops take no time");
        let t = d.read_page(0, t).unwrap();
        assert_eq!(t, SimTime::from_micros(5));
        d.invalidate_page(0).unwrap();
        let t = d.erase_block(0, t).unwrap();
        assert_eq!(t, SimTime::from_micros(5));
        let ops = d.end_staging();
        assert_eq!(
            ops.iter().map(|o| o.op).collect::<Vec<_>>(),
            vec![FlashOp::Program, FlashOp::Read, FlashOp::Erase]
        );
        assert!(ops.iter().all(|o| o.chip == 0 && o.channel == 0));
        // State and statistics were applied eagerly...
        assert_eq!(d.page_state(0).unwrap(), PageState::Free);
        assert_eq!(d.stats().programs, 1);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().erases, 1);
        // ...but no chip time was consumed.
        assert_eq!(d.drain_time(), SimTime::ZERO);
    }

    #[test]
    fn charge_op_matches_blocking_timing() {
        // Replaying a staged sequence through charge_op lands on the same
        // completion times as the blocking calls on a twin device.
        let mut staged_dev = dev();
        let mut blocking_dev = dev();
        staged_dev.begin_staging();
        staged_dev
            .program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        staged_dev
            .program_page(1, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        staged_dev.read_page(0, SimTime::ZERO).unwrap();
        let ops = staged_dev.end_staging();

        let mut t_charge = SimTime::ZERO;
        for op in &ops {
            t_charge = staged_dev.charge_op(op.op, op.chip, op.channel, t_charge);
        }
        let mut t_block = SimTime::ZERO;
        t_block = blocking_dev
            .program_page(0, OobData::mapped(1), t_block)
            .unwrap();
        t_block = blocking_dev
            .program_page(1, OobData::mapped(2), t_block)
            .unwrap();
        t_block = blocking_dev.read_page(0, t_block).unwrap();
        assert_eq!(t_charge, t_block, "charge replay must equal blocking time");
        assert_eq!(staged_dev.drain_time(), blocking_dev.drain_time());
    }

    #[test]
    #[should_panic(expected = "must not nest")]
    fn nested_staging_rejected() {
        let mut d = dev();
        d.begin_staging();
        d.begin_staging();
    }

    #[test]
    fn out_of_range_errors() {
        let mut d = dev();
        let total = d.geometry().total_pages();
        assert!(matches!(
            d.read_page(total, SimTime::ZERO),
            Err(DeviceError::PpnOutOfRange { .. })
        ));
        assert!(matches!(
            d.erase_block(d.geometry().total_blocks(), SimTime::ZERO),
            Err(DeviceError::BlockOutOfRange { .. })
        ));
    }
}
