//! The flash device: page/block state plus the discrete-event timing model.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::address::{PhysAddr, Ppn};
use crate::block::Block;
use crate::chip::Chip;
use crate::clock::SimTime;
use crate::config::SsdConfig;
use crate::error::{DeviceError, DeviceResult};
use crate::geometry::Geometry;
use crate::oob::OobData;
use crate::stats::{DeviceStats, FlashOp};
use crate::trace::{TraceBuffer, TraceData, TraceEvent, TraceReadClass, TraceSink};
use crate::PageState;

/// A simulated NAND flash device.
///
/// The device models:
///
/// * **state** — every page is free, valid or invalid; blocks are programmed
///   in order and erased as a whole,
/// * **timing** — each *plane* executes one NAND operation at a time and each
///   channel transfers one page at a time, so operations issued concurrently
///   against different chips (or different planes of one chip) overlap while
///   operations against the same plane queue. Multi-plane reads and programs
///   ([`FlashDevice::read_pages`], [`FlashDevice::program_pages`]) execute
///   the NAND phase of several planes in a single slot when their addresses
///   align on (block, page) across planes. A read holds its plane busy until
///   the page has crossed the channel bus (FEMU LUN semantics); cache-mode
///   knobs on [`crate::LatencyConfig`] relax the plane/register coupling,
/// * **metadata** — the OOB area of every page,
/// * **accounting** — counts of reads/programs/erases, split into host-data
///   and translation-page traffic.
///
/// The device knows nothing about logical addresses: the FTL layers own the
/// mapping, allocation and garbage-collection policies.
///
/// # Example
///
/// ```
/// use ssd_sim::{FlashDevice, SsdConfig, SimTime, OobData};
///
/// let mut dev = FlashDevice::new(SsdConfig::tiny());
/// let done_w = dev.program_page(0, OobData::mapped(9), SimTime::ZERO)?;
/// let done_r = dev.read_page(0, done_w)?;
/// assert!(done_r > done_w);
/// assert_eq!(dev.stats().programs, 1);
/// assert_eq!(dev.stats().reads, 1);
/// # Ok::<(), ssd_sim::DeviceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlashDevice {
    config: SsdConfig,
    chips: Vec<Chip>,
    channel_busy_until: Vec<SimTime>,
    oob: Vec<OobData>,
    stats: DeviceStats,
    next_cmd_id: u64,
    in_flight: BinaryHeap<Reverse<QueuedCommand>>,
    staging: Option<Vec<StagedOp>>,
    /// Recording trace sink; `None` (the default) disables tracing and keeps
    /// every emission site down to a single branch.
    trace: Option<Box<TraceBuffer>>,
    /// Whether the current timing call replays a staged GC charge
    /// ([`FlashDevice::charge_op`]); marks the emitted spans as GC traffic.
    charge_replay: bool,
}

/// One flash operation whose state effects have been applied under
/// [`FlashDevice::begin_staging`] but whose flash *time* has not been charged
/// yet. The recorded parallel units let a scheduler replay the timing later
/// with [`FlashDevice::charge_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedOp {
    /// The NAND operation that was staged.
    pub op: FlashOp,
    /// Flat index of the chip the operation occupies.
    pub chip: u64,
    /// Channel the operation's data crosses (the chip's channel for erases).
    pub channel: u32,
    /// Bitmask of the planes the operation occupies (bit `p` set ⇔ plane `p`
    /// participates). Single-plane operations set exactly one bit; a fused
    /// multi-plane read/program sets one bit per participating plane.
    pub planes: u32,
}

/// A flash command accepted by the enqueue/poll interface
/// ([`FlashDevice::enqueue_read`] and friends): the command's identity, the
/// parallel units it occupies and its timing.
///
/// Commands are totally ordered by `(completes_at, id)`, so collections of
/// them sort into completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueuedCommand {
    /// Completion time on the simulated clock (ordering field; see type docs).
    pub completes_at: SimTime,
    /// Device-assigned command identifier, unique for the device's lifetime.
    pub id: u64,
    /// The NAND operation the command performs.
    pub op: FlashOp,
    /// Flat index of the chip the command occupies.
    pub chip: u64,
    /// Channel the command's data crosses (the chip's channel for erases).
    pub channel: u32,
    /// Bitmask of the planes the command occupies on its chip.
    pub planes: u32,
    /// The time the command was enqueued.
    pub issued: SimTime,
}

impl QueuedCommand {
    /// The command's service time: enqueue to completion, including any time
    /// spent queued behind other operations on the same chip or channel.
    pub fn latency(&self) -> crate::Duration {
        self.completes_at - self.issued
    }
}

impl FlashDevice {
    /// Creates a fresh (fully erased) device.
    pub fn new(config: SsdConfig) -> Self {
        let g = config.geometry;
        let blocks_per_chip = g.blocks_per_chip() as u32;
        let chips = (0..g.total_chips())
            .map(|_| Chip::new(blocks_per_chip, g.pages_per_block, g.planes_per_chip))
            .collect();
        FlashDevice {
            config,
            chips,
            channel_busy_until: vec![SimTime::ZERO; g.channels as usize],
            oob: vec![OobData::default(); g.total_pages() as usize],
            stats: DeviceStats::new(),
            next_cmd_id: 0,
            in_flight: BinaryHeap::new(),
            staging: None,
            trace: None,
            charge_replay: false,
        }
    }

    /// Turns tracing on or off. Turning it on installs an empty
    /// [`TraceBuffer`]; turning it off drops any recorded events. Tracing
    /// never affects simulated timing — it only records it.
    pub fn set_tracing(&mut self, on: bool) {
        if on {
            if self.trace.is_none() {
                self.trace = Some(Box::default());
            }
        } else {
            self.trace = None;
        }
    }

    /// Whether tracing is currently enabled.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Takes every recorded trace event, leaving tracing enabled (if it was)
    /// with an empty buffer.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(|t| t.take()).unwrap_or_default()
    }

    /// The active trace sink, or `None` when tracing is disabled. Layers
    /// above the device (the I/O scheduler, the FTLs, the harness) emit
    /// their events through this, so one buffer per device collects the
    /// whole stack's stream in execution order.
    #[inline]
    pub fn trace_sink(&mut self) -> Option<&mut TraceBuffer> {
        self.trace.as_deref_mut()
    }

    /// Records how one logical page read was resolved by the FTL's
    /// translation path (a point event; no-op when tracing is off).
    #[inline]
    pub fn trace_read_class(&mut self, at: SimTime, class: TraceReadClass) {
        if let Some(t) = self.trace.as_mut() {
            t.instant(at, TraceData::ReadClass { class });
        }
    }

    /// Enters *staging* mode: subsequent `read_page` / `program_page` /
    /// `erase_block` calls apply their state effects and statistics
    /// immediately but charge **no flash time** (they return their `issue`
    /// argument unchanged) and are recorded instead. [`FlashDevice::end_staging`]
    /// hands the recorded operations back so a scheduler can replay their
    /// timing later with [`FlashDevice::charge_op`] — this is how scheduled
    /// garbage collection commits a collection's logical outcome atomically
    /// while its flash traffic contends with host commands over time.
    ///
    /// # Panics
    ///
    /// Panics if the device is already staging.
    pub fn begin_staging(&mut self) {
        assert!(self.staging.is_none(), "staging windows must not nest");
        self.staging = Some(Vec::new());
    }

    /// Leaves staging mode, returning every operation staged since
    /// [`FlashDevice::begin_staging`] in execution order.
    ///
    /// # Panics
    ///
    /// Panics if the device is not staging.
    pub fn end_staging(&mut self) -> Vec<StagedOp> {
        self.staging
            .take()
            .expect("end_staging requires an open staging window")
    }

    /// Whether a staging window is open.
    pub fn is_staging(&self) -> bool {
        self.staging.is_some()
    }

    /// Number of operations recorded in the open staging window (zero when
    /// not staging). Callers use this to mark boundaries inside a staged
    /// batch, e.g. the end of one GC victim's work.
    pub fn staged_len(&self) -> usize {
        self.staging.as_ref().map_or(0, Vec::len)
    }

    /// Occupies the timing resources of one flash operation — the planes in
    /// `planes` (a bitmask) for the NAND phase and the channel for the
    /// transfer phase(s), in the same order as the blocking calls — without
    /// touching page state or statistics. This is the replay half of the
    /// stage/charge split: state was already applied under
    /// [`FlashDevice::begin_staging`], so replaying lands on exactly the
    /// completion time the blocking call would have produced.
    pub fn charge_op(
        &mut self,
        op: FlashOp,
        chip: u64,
        channel: u32,
        planes: u32,
        issue: SimTime,
    ) -> SimTime {
        let plane_list = Self::planes_of_mask(planes);
        assert!(
            !plane_list.is_empty(),
            "charge_op needs at least one plane in the mask"
        );
        self.charge_replay = true;
        let done = match op {
            FlashOp::Read => self.time_read(chip as usize, channel, &plane_list, issue),
            FlashOp::Program => self.time_program(chip as usize, channel, &plane_list, issue),
            FlashOp::Erase => self.time_erase(chip as usize, plane_list[0], issue),
        };
        self.charge_replay = false;
        done
    }

    /// The ascending plane indices set in a plane bitmask.
    fn planes_of_mask(planes: u32) -> Vec<u32> {
        (0..u32::BITS).filter(|b| planes & (1 << b) != 0).collect()
    }

    /// Charges the timing of a (possibly multi-plane) page read: one NAND
    /// slot covering every plane in `planes`, then one channel burst per
    /// page, with each plane held busy until its own burst completes (unless
    /// cache-mode reads are enabled, in which case the next read on the plane
    /// may start its NAND phase under the outgoing burst).
    fn time_read(&mut self, chip: usize, channel: u32, planes: &[u32], issue: SimTime) -> SimTime {
        let lat = self.config.latency;
        let nand_latency = if planes.len() == 1 {
            lat.read
        } else {
            lat.multi_plane_read
        };
        let base = planes
            .iter()
            .map(|&p| {
                if lat.cache_read {
                    self.chips[chip].plane_nand_free(p)
                } else {
                    self.chips[chip].plane_free(p)
                }
            })
            .fold(SimTime::ZERO, SimTime::max);
        let start = issue.max(base);
        let nand_done = start + nand_latency;
        let mut done = nand_done;
        for &p in planes {
            done = self.occupy_channel(channel, FlashOp::Read, done, lat.channel_transfer);
            self.chips[chip].reserve_plane(p, nand_done, done);
            if let Some(t) = self.trace.as_mut() {
                t.span(
                    start,
                    done,
                    TraceData::PlaneOp {
                        chip: chip as u32,
                        plane: p,
                        op: FlashOp::Read,
                        gc: self.charge_replay,
                    },
                );
            }
        }
        done
    }

    /// Charges the timing of a (possibly multi-plane) page program: one
    /// channel burst per page, then one NAND slot covering every plane in
    /// `planes`. With cache-mode programs (the FEMU default) a burst crosses
    /// the bus at channel availability even while its plane still programs a
    /// previous page; without, the burst waits for the plane's register.
    fn time_program(
        &mut self,
        chip: usize,
        channel: u32,
        planes: &[u32],
        issue: SimTime,
    ) -> SimTime {
        let lat = self.config.latency;
        let nand_latency = if planes.len() == 1 {
            lat.program
        } else {
            lat.multi_plane_program
        };
        let mut last_bus = issue;
        for &p in planes {
            let from = if lat.cache_program {
                issue
            } else {
                issue.max(self.chips[chip].plane_free(p))
            };
            last_bus = self.occupy_channel(channel, FlashOp::Program, from, lat.channel_transfer);
        }
        let planes_free = planes
            .iter()
            .map(|&p| self.chips[chip].plane_free(p))
            .fold(SimTime::ZERO, SimTime::max);
        let nand_start = last_bus.max(planes_free);
        let done = nand_start + nand_latency;
        for &p in planes {
            self.chips[chip].reserve_plane(p, done, done);
            if let Some(t) = self.trace.as_mut() {
                t.span(
                    nand_start,
                    done,
                    TraceData::PlaneOp {
                        chip: chip as u32,
                        plane: p,
                        op: FlashOp::Program,
                        gc: self.charge_replay,
                    },
                );
            }
        }
        done
    }

    /// Charges the timing of a block erase on one plane: the plane is held
    /// for the erase latency, no channel traffic.
    fn time_erase(&mut self, chip: usize, plane: u32, issue: SimTime) -> SimTime {
        let lat = self.config.latency;
        let start = issue.max(self.chips[chip].plane_free(plane));
        let done = self.chips[chip].occupy_plane(plane, issue, lat.erase);
        debug_assert_eq!(done, start + lat.erase);
        if let Some(t) = self.trace.as_mut() {
            t.span(
                start,
                done,
                TraceData::PlaneOp {
                    chip: chip as u32,
                    plane,
                    op: FlashOp::Erase,
                    gc: self.charge_replay,
                },
            );
        }
        done
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.config.geometry
    }

    /// Operation statistics accumulated so far.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Resets the operation statistics to zero (state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::new();
    }

    /// Reads the page at `ppn`, issued at `issue`. Returns the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist and
    /// [`DeviceError::ReadOnFreePage`] if the page has never been programmed.
    pub fn read_page(&mut self, ppn: Ppn, issue: SimTime) -> DeviceResult<SimTime> {
        let addr = self.check_ppn(ppn)?;
        if self.page_state(ppn)? == PageState::Free {
            return Err(DeviceError::ReadOnFreePage { ppn });
        }
        let translation = self.oob[ppn as usize].is_translation;
        self.stats.record(FlashOp::Read, translation);
        let g = self.config.geometry;
        if let Some(staged) = &mut self.staging {
            staged.push(StagedOp {
                op: FlashOp::Read,
                chip: addr.chip_index(&g),
                channel: addr.channel,
                planes: 1 << addr.plane,
            });
            return Ok(issue);
        }
        // NAND array read on the plane, then the page crosses the channel
        // bus; the plane's register holds the page until the burst completes,
        // so the plane stays busy through its bus slot.
        let chip = addr.chip_index(&g) as usize;
        Ok(self.time_read(chip, addr.channel, &[addr.plane], issue))
    }

    /// Reads several pages of one chip as a single **multi-plane** read: the
    /// NAND phase of every page executes in one
    /// [`crate::LatencyConfig::multi_plane_read`] slot, then the pages cross
    /// the channel bus one after another. Returns the completion time of the
    /// last transfer.
    ///
    /// A single-page group degenerates to [`FlashDevice::read_page`].
    ///
    /// # Errors
    ///
    /// Returns the per-page errors of [`FlashDevice::read_page`], and
    /// [`DeviceError::MultiPlaneMisaligned`] unless the pages live on the
    /// same chip, on strictly ascending planes, at the same (block, page)
    /// offset within their plane. No state is modified on error.
    pub fn read_pages(&mut self, ppns: &[Ppn], issue: SimTime) -> DeviceResult<SimTime> {
        assert!(!ppns.is_empty(), "read_pages needs at least one page");
        if ppns.len() == 1 {
            return self.read_page(ppns[0], issue);
        }
        let addrs = self.check_multi_plane_group(ppns)?;
        for &ppn in ppns {
            if self.page_state(ppn)? == PageState::Free {
                return Err(DeviceError::ReadOnFreePage { ppn });
            }
        }
        for &ppn in ppns {
            let translation = self.oob[ppn as usize].is_translation;
            self.stats.record(FlashOp::Read, translation);
        }
        let g = self.config.geometry;
        let first = addrs[0];
        if let Some(staged) = &mut self.staging {
            staged.push(StagedOp {
                op: FlashOp::Read,
                chip: first.chip_index(&g),
                channel: first.channel,
                planes: Self::group_mask(&addrs),
            });
            return Ok(issue);
        }
        let planes: Vec<u32> = addrs.iter().map(|a| a.plane).collect();
        let chip = first.chip_index(&g) as usize;
        Ok(self.time_read(chip, first.channel, &planes, issue))
    }

    /// Programs the page at `ppn` with `oob` metadata, issued at `issue`.
    /// Returns the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist and
    /// [`DeviceError::ProgramOnUsedPage`] if the page is not the next free
    /// page of its block (NAND requires in-order programming).
    pub fn program_page(
        &mut self,
        ppn: Ppn,
        oob: OobData,
        issue: SimTime,
    ) -> DeviceResult<SimTime> {
        let addr = self.check_ppn(ppn)?;
        let g = self.config.geometry;
        let chip_idx = addr.chip_index(&g) as usize;
        let local_block = Self::local_block(&addr, &g);
        {
            let block = self.chips[chip_idx].block_mut(local_block);
            if !block.program(addr.page) {
                return Err(DeviceError::ProgramOnUsedPage { ppn });
            }
        }
        self.oob[ppn as usize] = oob;
        self.stats.record(FlashOp::Program, oob.is_translation);
        if let Some(staged) = &mut self.staging {
            staged.push(StagedOp {
                op: FlashOp::Program,
                chip: chip_idx as u64,
                channel: addr.channel,
                planes: 1 << addr.plane,
            });
            return Ok(issue);
        }
        // Data crosses the channel bus first, then the NAND array programs it.
        Ok(self.time_program(chip_idx, addr.channel, &[addr.plane], issue))
    }

    /// Programs several pages of one chip as a single **multi-plane**
    /// program: each page's data crosses the channel bus in turn, then the
    /// NAND phase of every plane executes in one
    /// [`crate::LatencyConfig::multi_plane_program`] slot. Returns the
    /// completion time of the shared slot.
    ///
    /// A single-page group degenerates to [`FlashDevice::program_page`].
    ///
    /// # Errors
    ///
    /// Returns the per-page errors of [`FlashDevice::program_page`], and
    /// [`DeviceError::MultiPlaneMisaligned`] unless the pages live on the
    /// same chip, on strictly ascending planes, at the same (block, page)
    /// offset within their plane. No state is modified on error.
    pub fn program_pages(
        &mut self,
        writes: &[(Ppn, OobData)],
        issue: SimTime,
    ) -> DeviceResult<SimTime> {
        assert!(!writes.is_empty(), "program_pages needs at least one page");
        if writes.len() == 1 {
            let (ppn, oob) = writes[0];
            return self.program_page(ppn, oob, issue);
        }
        let ppns: Vec<Ppn> = writes.iter().map(|&(ppn, _)| ppn).collect();
        let addrs = self.check_multi_plane_group(&ppns)?;
        let g = self.config.geometry;
        // Validate the whole group before committing any page state.
        for (addr, &(ppn, _)) in addrs.iter().zip(writes) {
            let block = self.chips[addr.chip_index(&g) as usize].block(Self::local_block(addr, &g));
            if block.write_pointer() != Some(addr.page) {
                return Err(DeviceError::ProgramOnUsedPage { ppn });
            }
        }
        for (addr, &(ppn, oob)) in addrs.iter().zip(writes) {
            let chip_idx = addr.chip_index(&g) as usize;
            let programmed = self.chips[chip_idx]
                .block_mut(Self::local_block(addr, &g))
                .program(addr.page);
            debug_assert!(programmed, "group was validated above");
            self.oob[ppn as usize] = oob;
            self.stats.record(FlashOp::Program, oob.is_translation);
        }
        let first = addrs[0];
        if let Some(staged) = &mut self.staging {
            staged.push(StagedOp {
                op: FlashOp::Program,
                chip: first.chip_index(&g),
                channel: first.channel,
                planes: Self::group_mask(&addrs),
            });
            return Ok(issue);
        }
        let planes: Vec<u32> = addrs.iter().map(|a| a.plane).collect();
        let chip = first.chip_index(&g) as usize;
        Ok(self.time_program(chip, first.channel, &planes, issue))
    }

    /// Validates a multi-plane group: every page on the same chip, strictly
    /// ascending planes, identical (block, page) offsets. Returns the decoded
    /// addresses.
    fn check_multi_plane_group(&self, ppns: &[Ppn]) -> DeviceResult<Vec<PhysAddr>> {
        let addrs: Vec<PhysAddr> = ppns
            .iter()
            .map(|&ppn| self.check_ppn(ppn))
            .collect::<DeviceResult<_>>()?;
        let first = addrs[0];
        for (addr, &ppn) in addrs.iter().zip(ppns).skip(1) {
            let aligned = addr.channel == first.channel
                && addr.chip == first.chip
                && addr.block == first.block
                && addr.page == first.page;
            if !aligned {
                return Err(DeviceError::MultiPlaneMisaligned { ppn });
            }
        }
        for (pair, &ppn) in addrs.windows(2).zip(&ppns[1..]) {
            if pair[1].plane <= pair[0].plane {
                return Err(DeviceError::MultiPlaneMisaligned { ppn });
            }
        }
        Ok(addrs)
    }

    /// The plane bitmask of an aligned group.
    fn group_mask(addrs: &[PhysAddr]) -> u32 {
        addrs.iter().fold(0u32, |m, a| m | (1 << a.plane))
    }

    /// Marks the page at `ppn` invalid (superseded). This is a metadata-only
    /// operation with no timing cost.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist. It is
    /// not an error to invalidate a page twice or to invalidate a free page —
    /// the call is then a no-op — because FTL write paths routinely overwrite
    /// logical pages whose previous physical location is already stale.
    pub fn invalidate_page(&mut self, ppn: Ppn) -> DeviceResult<()> {
        let addr = self.check_ppn(ppn)?;
        let g = self.config.geometry;
        let chip_idx = addr.chip_index(&g) as usize;
        let local_block = Self::local_block(&addr, &g);
        self.chips[chip_idx]
            .block_mut(local_block)
            .invalidate(addr.page);
        Ok(())
    }

    /// Erases the block identified by the device-wide flat block index.
    /// Returns the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BlockOutOfRange`] if the block does not exist
    /// and [`DeviceError::EraseWithValidPages`] if the block still holds valid
    /// pages (the FTL must relocate them first).
    pub fn erase_block(&mut self, flat_block: u64, issue: SimTime) -> DeviceResult<SimTime> {
        let g = self.config.geometry;
        let total_blocks = g.total_blocks();
        if flat_block >= total_blocks {
            return Err(DeviceError::BlockOutOfRange {
                block: flat_block,
                total: total_blocks,
            });
        }
        let blocks_per_chip = g.blocks_per_chip();
        let chip_idx = (flat_block / blocks_per_chip) as usize;
        let local_block = (flat_block % blocks_per_chip) as u32;
        let valid = self.chips[chip_idx].block(local_block).valid_pages();
        if valid > 0 {
            return Err(DeviceError::EraseWithValidPages {
                block: flat_block,
                valid,
            });
        }
        self.chips[chip_idx].block_mut(local_block).erase();
        // Clear the OOB of every page in the block.
        let first_ppn = self.first_ppn_of_flat_block(flat_block);
        for p in 0..u64::from(g.pages_per_block) {
            self.oob[(first_ppn + p) as usize] = OobData::default();
        }
        self.stats.record(FlashOp::Erase, false);
        let plane = local_block / g.blocks_per_plane;
        if let Some(staged) = &mut self.staging {
            let channel = (chip_idx as u64 / u64::from(g.chips_per_channel)) as u32;
            staged.push(StagedOp {
                op: FlashOp::Erase,
                chip: chip_idx as u64,
                channel,
                planes: 1 << plane,
            });
            return Ok(issue);
        }
        Ok(self.time_erase(chip_idx, plane, issue))
    }

    /// Enqueues a page read, issued at `issue`. The non-blocking twin of
    /// [`FlashDevice::read_page`]: the command's state change and timing are
    /// identical, but completion is delivered through
    /// [`FlashDevice::poll_completions`] instead of the return value, so
    /// callers can keep many commands in flight and reap them out of order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashDevice::read_page`].
    pub fn enqueue_read(&mut self, ppn: Ppn, issue: SimTime) -> DeviceResult<QueuedCommand> {
        let done = self.read_page(ppn, issue)?;
        let g = self.config.geometry;
        let addr = PhysAddr::from_ppn(ppn, &g);
        Ok(self.track_command(
            FlashOp::Read,
            addr.chip_index(&g),
            addr.channel,
            1 << addr.plane,
            issue,
            done,
        ))
    }

    /// Enqueues a page program, issued at `issue`. The non-blocking twin of
    /// [`FlashDevice::program_page`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashDevice::program_page`].
    pub fn enqueue_program(
        &mut self,
        ppn: Ppn,
        oob: OobData,
        issue: SimTime,
    ) -> DeviceResult<QueuedCommand> {
        let done = self.program_page(ppn, oob, issue)?;
        let g = self.config.geometry;
        let addr = PhysAddr::from_ppn(ppn, &g);
        Ok(self.track_command(
            FlashOp::Program,
            addr.chip_index(&g),
            addr.channel,
            1 << addr.plane,
            issue,
            done,
        ))
    }

    /// Enqueues a block erase, issued at `issue`. The non-blocking twin of
    /// [`FlashDevice::erase_block`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashDevice::erase_block`].
    pub fn enqueue_erase(
        &mut self,
        flat_block: u64,
        issue: SimTime,
    ) -> DeviceResult<QueuedCommand> {
        let g = self.config.geometry;
        let done = self.erase_block(flat_block, issue)?;
        let chip = flat_block / g.blocks_per_chip();
        let channel = (chip / u64::from(g.chips_per_channel)) as u32;
        let plane = ((flat_block % g.blocks_per_chip()) / u64::from(g.blocks_per_plane)) as u32;
        Ok(self.track_command(FlashOp::Erase, chip, channel, 1 << plane, issue, done))
    }

    /// Pops every enqueued command that has completed by `now`, in completion
    /// order. Commands enqueued through the `enqueue_*` methods stay in the
    /// device's in-flight set until reaped here.
    pub fn poll_completions(&mut self, now: SimTime) -> Vec<QueuedCommand> {
        let mut done = Vec::new();
        while let Some(Reverse(cmd)) = self.in_flight.peek() {
            if cmd.completes_at > now {
                break;
            }
            let Reverse(cmd) = self.in_flight.pop().expect("peeked entry exists");
            done.push(cmd);
        }
        done
    }

    /// Number of enqueued commands not yet reaped via
    /// [`FlashDevice::poll_completions`].
    pub fn in_flight_commands(&self) -> usize {
        self.in_flight.len()
    }

    /// Completion time of the earliest unreaped command, or `None` when the
    /// in-flight set is empty. Event loops use this to decide how far the
    /// simulated clock may jump.
    pub fn next_completion_time(&self) -> Option<SimTime> {
        self.in_flight.peek().map(|Reverse(cmd)| cmd.completes_at)
    }

    fn track_command(
        &mut self,
        op: FlashOp,
        chip: u64,
        channel: u32,
        planes: u32,
        issued: SimTime,
        completes_at: SimTime,
    ) -> QueuedCommand {
        debug_assert!(
            self.staging.is_none(),
            "the enqueue/poll interface must not be used inside a staging window"
        );
        let cmd = QueuedCommand {
            completes_at,
            id: self.next_cmd_id,
            op,
            chip,
            channel,
            planes,
            issued,
        };
        self.next_cmd_id += 1;
        self.in_flight.push(Reverse(cmd));
        cmd
    }

    /// The state of the page at `ppn`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist.
    pub fn page_state(&self, ppn: Ppn) -> DeviceResult<PageState> {
        let addr = self.check_ppn(ppn)?;
        let g = self.config.geometry;
        let chip_idx = addr.chip_index(&g) as usize;
        let local_block = Self::local_block(&addr, &g);
        Ok(self.chips[chip_idx]
            .block(local_block)
            .page_state(addr.page))
    }

    /// The OOB metadata of the page at `ppn`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PpnOutOfRange`] if `ppn` does not exist.
    pub fn oob(&self, ppn: Ppn) -> DeviceResult<&OobData> {
        self.check_ppn(ppn)?;
        Ok(&self.oob[ppn as usize])
    }

    /// Shared access to the block metadata at a flat block index.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BlockOutOfRange`] if the block does not exist.
    pub fn block_info(&self, flat_block: u64) -> DeviceResult<&Block> {
        let g = self.config.geometry;
        if flat_block >= g.total_blocks() {
            return Err(DeviceError::BlockOutOfRange {
                block: flat_block,
                total: g.total_blocks(),
            });
        }
        let blocks_per_chip = g.blocks_per_chip();
        let chip_idx = (flat_block / blocks_per_chip) as usize;
        let local_block = (flat_block % blocks_per_chip) as u32;
        Ok(self.chips[chip_idx].block(local_block))
    }

    /// The first PPN that belongs to the block with the given flat index.
    pub fn first_ppn_of_flat_block(&self, flat_block: u64) -> Ppn {
        flat_block * u64::from(self.config.geometry.pages_per_block)
    }

    /// The flat block index that contains `ppn`.
    pub fn flat_block_of_ppn(&self, ppn: Ppn) -> u64 {
        ppn / u64::from(self.config.geometry.pages_per_block)
    }

    /// The next programmable page (as a PPN) inside the block with the given
    /// flat index, or `None` if the block is full.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BlockOutOfRange`] if the block does not exist.
    pub fn next_free_ppn_in_block(&self, flat_block: u64) -> DeviceResult<Option<Ppn>> {
        let block = self.block_info(flat_block)?;
        Ok(block
            .write_pointer()
            .map(|page| self.first_ppn_of_flat_block(flat_block) + u64::from(page)))
    }

    /// The simulated time at which the **plane** holding `ppn` becomes idle.
    ///
    /// Plane-resolved on purpose: the whole-chip maximum would over-report
    /// availability for an address whose plane is already free, which made
    /// any scheduler lookahead built on this value non-conservative on
    /// multi-plane geometries. With one plane per chip the two notions
    /// coincide (regression-tested).
    pub fn chip_busy_until(&self, ppn: Ppn) -> SimTime {
        let g = self.config.geometry;
        let addr = PhysAddr::from_ppn(ppn, &g);
        self.chips[addr.chip_index(&g) as usize].plane_free(addr.plane)
    }

    /// The busiest (largest) plane timeline across all chips: the time at
    /// which the entire device has drained.
    pub fn drain_time(&self) -> SimTime {
        self.chips
            .iter()
            .map(Chip::busy_until)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Per-chip free page counts, indexed by flat chip index. Dynamic
    /// allocators use this to pick the least-loaded chip.
    pub fn free_pages_per_chip(&self) -> Vec<u64> {
        self.chips.iter().map(Chip::free_pages).collect()
    }

    /// Per-chip availability, indexed by flat chip index: the time each chip
    /// can next *accept* an operation, i.e. its earliest-free plane. A chip
    /// with any idle plane reports that plane's time, not the whole-chip
    /// maximum — plane-resolved availability for plane-aware dispatch. With
    /// one plane per chip this is the classic per-chip busy-until.
    pub fn busy_until_per_chip(&self) -> Vec<SimTime> {
        self.chips.iter().map(Chip::next_plane_free).collect()
    }

    /// Per-plane busy-until times, indexed by flat plane index
    /// (`chip * planes_per_chip + plane`).
    pub fn busy_until_per_plane(&self) -> Vec<SimTime> {
        self.chips
            .iter()
            .flat_map(|c| (0..c.plane_count()).map(|p| c.plane_free(p)))
            .collect()
    }

    /// Number of fully erased blocks in the whole device.
    pub fn free_block_count(&self) -> u64 {
        let g = self.config.geometry;
        (0..g.total_blocks())
            .filter(|&b| {
                self.block_info(b)
                    .map(|blk| blk.state() == crate::BlockState::Free)
                    .unwrap_or(false)
            })
            .count() as u64
    }

    /// Total erase operations executed (wear indicator).
    pub fn total_erases(&self) -> u64 {
        self.chips.iter().map(Chip::total_erases).sum()
    }

    fn occupy_channel(
        &mut self,
        channel: u32,
        op: FlashOp,
        issue: SimTime,
        transfer: crate::Duration,
    ) -> SimTime {
        let busy = &mut self.channel_busy_until[channel as usize];
        let start = issue.max(*busy);
        let done = start + transfer;
        *busy = done;
        if let Some(t) = self.trace.as_mut() {
            t.span(
                start,
                done,
                TraceData::BusXfer {
                    channel,
                    op,
                    gc: self.charge_replay,
                },
            );
        }
        done
    }

    fn check_ppn(&self, ppn: Ppn) -> DeviceResult<PhysAddr> {
        let g = self.config.geometry;
        if ppn >= g.total_pages() {
            return Err(DeviceError::PpnOutOfRange {
                ppn,
                total: g.total_pages(),
            });
        }
        Ok(PhysAddr::from_ppn(ppn, &g))
    }

    fn local_block(addr: &PhysAddr, g: &Geometry) -> u32 {
        addr.plane * g.blocks_per_plane + addr.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Duration, LatencyConfig};

    fn dev() -> FlashDevice {
        FlashDevice::new(SsdConfig::tiny())
    }

    #[test]
    fn program_then_read_roundtrips_oob() {
        let mut d = dev();
        d.program_page(0, OobData::mapped(123), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.oob(0).unwrap().lpn, Some(123));
        assert_eq!(d.page_state(0).unwrap(), PageState::Valid);
        let done = d.read_page(0, SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn read_free_page_is_error() {
        let mut d = dev();
        assert_eq!(
            d.read_page(5, SimTime::ZERO),
            Err(DeviceError::ReadOnFreePage { ppn: 5 })
        );
    }

    #[test]
    fn program_out_of_order_is_error() {
        let mut d = dev();
        // Page 1 of block 0 without programming page 0 first.
        assert_eq!(
            d.program_page(1, OobData::mapped(1), SimTime::ZERO),
            Err(DeviceError::ProgramOnUsedPage { ppn: 1 })
        );
    }

    #[test]
    fn reprogram_is_error() {
        let mut d = dev();
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            d.program_page(0, OobData::mapped(2), SimTime::ZERO),
            Err(DeviceError::ProgramOnUsedPage { ppn: 0 })
        );
    }

    #[test]
    fn erase_requires_no_valid_pages() {
        let mut d = dev();
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            d.erase_block(0, SimTime::ZERO),
            Err(DeviceError::EraseWithValidPages { .. })
        ));
        d.invalidate_page(0).unwrap();
        let done = d.erase_block(0, SimTime::ZERO).unwrap();
        assert!(done >= SimTime::from_millis(2));
        assert_eq!(d.page_state(0).unwrap(), PageState::Free);
        assert_eq!(d.oob(0).unwrap().lpn, None);
        // The block is programmable again.
        d.program_page(0, OobData::mapped(9), SimTime::ZERO)
            .unwrap();
    }

    #[test]
    fn operations_on_same_chip_queue() {
        let mut d = dev();
        let g = *d.geometry();
        // Two pages on the same chip (channel 0, chip 0): block 0 page 0 and 1.
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        d.program_page(1, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        let t1 = d.read_page(0, SimTime::ZERO).unwrap();
        let t2 = d.read_page(1, SimTime::ZERO).unwrap();
        assert!(t2 > t1, "same-chip reads must serialise");
        // Two pages on different chips overlap: read completion times differ
        // by less than a full read latency.
        let other_chip_ppn = g.pages_per_chip(); // first page of chip 1
        let addr = PhysAddr::from_ppn(other_chip_ppn, &g);
        assert_ne!(addr.chip_index(&g), 0);
    }

    #[test]
    fn operations_on_different_chips_overlap() {
        let cfg = SsdConfig::tiny();
        let g = cfg.geometry;
        let mut d = FlashDevice::new(cfg);
        let chip0_ppn = 0;
        let chip1_ppn = g.pages_per_chip();
        d.program_page(chip0_ppn, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        d.program_page(chip1_ppn, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        let base = d.drain_time();
        let t1 = d.read_page(chip0_ppn, base).unwrap();
        let t2 = d.read_page(chip1_ppn, base).unwrap();
        // Both reads finish within ~one read latency + transfers of each other.
        let spread = if t1 > t2 { t1 - t2 } else { t2 - t1 };
        assert!(spread < Duration::from_micros(40));
    }

    #[test]
    fn stats_track_translation_traffic() {
        let mut d = dev();
        d.program_page(0, OobData::translation(), SimTime::ZERO)
            .unwrap();
        d.program_page(1, OobData::mapped(4), SimTime::ZERO)
            .unwrap();
        d.read_page(0, SimTime::ZERO).unwrap();
        d.read_page(1, SimTime::ZERO).unwrap();
        let s = d.stats();
        assert_eq!(s.programs, 2);
        assert_eq!(s.translation_programs, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.translation_reads, 1);
        assert_eq!(s.data_reads(), 1);
    }

    #[test]
    fn next_free_ppn_walks_the_block() {
        let mut d = dev();
        assert_eq!(d.next_free_ppn_in_block(0).unwrap(), Some(0));
        d.program_page(0, OobData::mapped(0), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.next_free_ppn_in_block(0).unwrap(), Some(1));
        let pages = d.geometry().pages_per_block;
        for p in 1..pages {
            d.program_page(u64::from(p), OobData::mapped(u64::from(p)), SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(d.next_free_ppn_in_block(0).unwrap(), None);
    }

    #[test]
    fn free_block_count_decreases_with_programs() {
        let mut d = dev();
        let total = d.geometry().total_blocks();
        assert_eq!(d.free_block_count(), total);
        d.program_page(0, OobData::mapped(0), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.free_block_count(), total - 1);
    }

    #[test]
    fn enqueue_matches_blocking_timing() {
        let mut queued = dev();
        let mut blocking = dev();
        let ops: &[(Ppn, u64)] = &[(0, 10), (1, 11), (2, 12)];
        for &(ppn, lpn) in ops {
            let c = queued
                .enqueue_program(ppn, OobData::mapped(lpn), SimTime::ZERO)
                .unwrap();
            let done = blocking
                .program_page(ppn, OobData::mapped(lpn), SimTime::ZERO)
                .unwrap();
            assert_eq!(
                c.completes_at, done,
                "enqueue and blocking paths must agree"
            );
        }
        let c = queued.enqueue_read(0, SimTime::ZERO).unwrap();
        let done = blocking.read_page(0, SimTime::ZERO).unwrap();
        assert_eq!(c.completes_at, done);
        assert_eq!(c.op, FlashOp::Read);
        assert!(c.latency() > Duration::ZERO);
    }

    #[test]
    fn poll_reaps_in_completion_order() {
        let mut d = dev();
        let g = *d.geometry();
        // One program per chip: they overlap, then a second on chip 0 queues.
        let chip0 = 0;
        let chip1 = g.pages_per_chip();
        d.enqueue_program(chip1, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        d.enqueue_program(chip0, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        d.enqueue_program(chip0 + 1, OobData::mapped(3), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.in_flight_commands(), 3);
        let first = d.next_completion_time().expect("commands in flight");
        assert!(
            d.poll_completions(SimTime::ZERO).is_empty(),
            "nothing done at t=0"
        );
        let done = d.poll_completions(first);
        assert!(!done.is_empty());
        let all = d.poll_completions(d.drain_time());
        assert_eq!(
            done.len() + all.len(),
            3,
            "every command completes exactly once"
        );
        let mut times: Vec<SimTime> = done
            .iter()
            .chain(all.iter())
            .map(|c| c.completes_at)
            .collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "completions must arrive in completion order");
        times.dedup();
        assert_eq!(
            times.len(),
            3,
            "same-chip commands must not share completion times"
        );
        assert_eq!(d.in_flight_commands(), 0);
    }

    #[test]
    fn enqueue_errors_leave_no_ghost_commands() {
        let mut d = dev();
        assert!(d.enqueue_read(5, SimTime::ZERO).is_err());
        assert!(d
            .enqueue_program(1, OobData::mapped(1), SimTime::ZERO)
            .is_err());
        assert_eq!(d.in_flight_commands(), 0);
        assert_eq!(d.next_completion_time(), None);
    }

    #[test]
    fn staging_applies_state_without_charging_time() {
        let mut d = dev();
        d.begin_staging();
        let t = d
            .program_page(0, OobData::mapped(7), SimTime::from_micros(5))
            .unwrap();
        assert_eq!(t, SimTime::from_micros(5), "staged ops take no time");
        let t = d.read_page(0, t).unwrap();
        assert_eq!(t, SimTime::from_micros(5));
        d.invalidate_page(0).unwrap();
        let t = d.erase_block(0, t).unwrap();
        assert_eq!(t, SimTime::from_micros(5));
        let ops = d.end_staging();
        assert_eq!(
            ops.iter().map(|o| o.op).collect::<Vec<_>>(),
            vec![FlashOp::Program, FlashOp::Read, FlashOp::Erase]
        );
        assert!(ops
            .iter()
            .all(|o| o.chip == 0 && o.channel == 0 && o.planes == 1));
        // State and statistics were applied eagerly...
        assert_eq!(d.page_state(0).unwrap(), PageState::Free);
        assert_eq!(d.stats().programs, 1);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().erases, 1);
        // ...but no chip time was consumed.
        assert_eq!(d.drain_time(), SimTime::ZERO);
    }

    #[test]
    fn charge_op_matches_blocking_timing() {
        // Replaying a staged sequence through charge_op lands on the same
        // completion times as the blocking calls on a twin device.
        let mut staged_dev = dev();
        let mut blocking_dev = dev();
        staged_dev.begin_staging();
        staged_dev
            .program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        staged_dev
            .program_page(1, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        staged_dev.read_page(0, SimTime::ZERO).unwrap();
        let ops = staged_dev.end_staging();

        let mut t_charge = SimTime::ZERO;
        for op in &ops {
            t_charge = staged_dev.charge_op(op.op, op.chip, op.channel, op.planes, t_charge);
        }
        let mut t_block = SimTime::ZERO;
        t_block = blocking_dev
            .program_page(0, OobData::mapped(1), t_block)
            .unwrap();
        t_block = blocking_dev
            .program_page(1, OobData::mapped(2), t_block)
            .unwrap();
        t_block = blocking_dev.read_page(0, t_block).unwrap();
        assert_eq!(t_charge, t_block, "charge replay must equal blocking time");
        assert_eq!(staged_dev.drain_time(), blocking_dev.drain_time());
    }

    #[test]
    #[should_panic(expected = "must not nest")]
    fn nested_staging_rejected() {
        let mut d = dev();
        d.begin_staging();
        d.begin_staging();
    }

    #[test]
    fn out_of_range_errors() {
        let mut d = dev();
        let total = d.geometry().total_pages();
        assert!(matches!(
            d.read_page(total, SimTime::ZERO),
            Err(DeviceError::PpnOutOfRange { .. })
        ));
        assert!(matches!(
            d.erase_block(d.geometry().total_blocks(), SimTime::ZERO),
            Err(DeviceError::BlockOutOfRange { .. })
        ));
    }

    /// A device with two planes per chip (same capacity as `tiny`).
    fn dev2() -> FlashDevice {
        FlashDevice::new(SsdConfig::tiny().with_planes(2))
    }

    /// PPN of (chip 0, plane `plane`, block 0, page `page`) on `dev2`.
    fn plane_ppn(d: &FlashDevice, plane: u32, page: u32) -> Ppn {
        PhysAddr {
            channel: 0,
            chip: 0,
            plane,
            block: 0,
            page,
        }
        .to_ppn(d.geometry())
    }

    // Regression for the read-path channel accounting bug: the chip used to
    // be freed at `nand_done` while its page still crossed the bus, so a
    // queued read on the same chip started its NAND phase under an occupied
    // channel for free. The plane must be held through its bus slot.
    #[test]
    fn two_reads_one_channel_hold_the_chip_through_the_bus_slot() {
        let mut d = dev();
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        d.program_page(1, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        let t0 = d.drain_time();
        // femu defaults: 40us NAND read, 5us transfer.
        let t1 = d.read_page(0, t0).unwrap();
        assert_eq!(t1 - t0, Duration::from_micros(45), "nand + burst");
        let t2 = d.read_page(1, t0).unwrap();
        assert_eq!(
            t2 - t0,
            Duration::from_micros(90),
            "the second NAND read must wait for the first burst to free the plane"
        );
        // Two chips of the same channel overlap their NAND phases and only
        // serialise on the bus.
        let mut d = dev();
        let g = *d.geometry();
        let other = g.pages_per_chip(); // chip 1, same channel as chip 0
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        d.program_page(other, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        let t0 = d.drain_time();
        let ta = d.read_page(0, t0).unwrap();
        let tb = d.read_page(other, t0).unwrap();
        assert_eq!(ta - t0, Duration::from_micros(45));
        assert_eq!(tb - t0, Duration::from_micros(50), "bus-serialised only");
    }

    #[test]
    fn cache_read_overlaps_burst_with_next_nand_phase() {
        let cfg =
            SsdConfig::tiny().with_latency(LatencyConfig::femu_default().with_cache_read(true));
        let mut d = FlashDevice::new(cfg);
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        d.program_page(1, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        let t0 = d.drain_time();
        let t1 = d.read_page(0, t0).unwrap();
        assert_eq!(t1 - t0, Duration::from_micros(45));
        let t2 = d.read_page(1, t0).unwrap();
        assert_eq!(
            t2 - t0,
            Duration::from_micros(85),
            "cache read: page 0's burst overlaps page 1's NAND time"
        );
    }

    #[test]
    fn independent_planes_overlap_their_nand_phases() {
        let mut d = dev2();
        let p0 = plane_ppn(&d, 0, 0);
        let p1 = plane_ppn(&d, 1, 0);
        // bursts serialise on the channel (5us each); the 200us NAND
        // programs overlap across planes.
        let t0 = d
            .program_page(p0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        let t1 = d
            .program_page(p1, OobData::mapped(2), SimTime::ZERO)
            .unwrap();
        assert_eq!(t0, SimTime::from_micros(205));
        assert_eq!(t1, SimTime::from_micros(210), "planes overlap, not queue");
        // Same plane still serialises.
        let t2 = d
            .program_page(p0 + 1, OobData::mapped(3), SimTime::ZERO)
            .unwrap();
        assert!(t2 > SimTime::from_micros(400), "same plane must serialise");
    }

    #[test]
    fn multi_plane_program_and_read_share_one_nand_slot() {
        let mut d = dev2();
        let p0 = plane_ppn(&d, 0, 0);
        let p1 = plane_ppn(&d, 1, 0);
        let done = d
            .program_pages(
                &[(p0, OobData::mapped(1)), (p1, OobData::mapped(2))],
                SimTime::ZERO,
            )
            .unwrap();
        // Transfers [0,5] and [5,10], one shared 200us program slot.
        assert_eq!(done, SimTime::from_micros(210));
        assert_eq!(d.stats().programs, 2);
        assert_eq!(d.page_state(p0).unwrap(), PageState::Valid);
        assert_eq!(d.page_state(p1).unwrap(), PageState::Valid);
        let read_done = d.read_pages(&[p0, p1], done).unwrap();
        // One 40us slot, then two 5us bursts.
        assert_eq!(read_done, done + Duration::from_micros(50));
        assert_eq!(d.stats().reads, 2);
        // Plane 0 frees at its own burst, plane 1 at the later one.
        assert_eq!(d.chip_busy_until(p0), done + Duration::from_micros(45));
        assert_eq!(d.chip_busy_until(p1), read_done);
    }

    #[test]
    fn misaligned_multi_plane_groups_are_rejected_without_state_change() {
        let mut d = dev2();
        let p0 = plane_ppn(&d, 0, 0);
        let p1 = plane_ppn(&d, 1, 0);
        // Different page offsets.
        assert_eq!(
            d.program_pages(
                &[(p0, OobData::mapped(1)), (p1 + 1, OobData::mapped(2))],
                SimTime::ZERO,
            ),
            Err(DeviceError::MultiPlaneMisaligned { ppn: p1 + 1 })
        );
        // Same plane twice.
        assert_eq!(
            d.program_pages(
                &[(p0, OobData::mapped(1)), (p0, OobData::mapped(2))],
                SimTime::ZERO,
            ),
            Err(DeviceError::MultiPlaneMisaligned { ppn: p0 })
        );
        // Descending planes.
        assert_eq!(
            d.program_pages(
                &[(p1, OobData::mapped(1)), (p0, OobData::mapped(2))],
                SimTime::ZERO,
            ),
            Err(DeviceError::MultiPlaneMisaligned { ppn: p0 })
        );
        assert_eq!(d.page_state(p0).unwrap(), PageState::Free);
        assert_eq!(d.page_state(p1).unwrap(), PageState::Free);
        assert_eq!(d.stats().programs, 0);
        assert_eq!(d.drain_time(), SimTime::ZERO);
    }

    #[test]
    fn plane_resolved_availability_is_not_the_chip_maximum() {
        let mut d = dev2();
        let p0 = plane_ppn(&d, 0, 0);
        let p1 = plane_ppn(&d, 1, 0);
        let done = d
            .program_page(p0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        // Plane 1 is idle even though plane 0 is busy until `done`.
        assert_eq!(d.chip_busy_until(p1), SimTime::ZERO);
        assert_eq!(d.chip_busy_until(p0), done);
        assert_eq!(d.busy_until_per_chip()[0], SimTime::ZERO, "earliest plane");
        assert_eq!(d.busy_until_per_plane()[0], done);
        assert_eq!(d.busy_until_per_plane()[1], SimTime::ZERO);
        assert_eq!(d.drain_time(), done, "drain waits for the busiest plane");
    }

    // Pins the planes=1 equivalence of the plane-resolved availability APIs:
    // with one plane per chip, chip_busy_until and busy_until_per_chip must
    // coincide with the whole-chip drain semantics the pre-plane model
    // reported, so scheduler lookahead built on them stays conservative.
    #[test]
    fn single_plane_availability_matches_whole_chip_semantics() {
        let mut d = dev();
        let done = d
            .program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.chip_busy_until(0), done);
        assert_eq!(d.busy_until_per_chip()[0], done);
        assert_eq!(d.busy_until_per_plane()[0], done);
        assert_eq!(
            d.busy_until_per_chip().len() as u64,
            d.geometry().total_chips()
        );
        assert_eq!(
            d.busy_until_per_plane(),
            d.busy_until_per_chip(),
            "one plane per chip: the two views are identical"
        );
    }

    #[test]
    fn staged_multi_plane_ops_charge_like_blocking_calls() {
        let mut staged_dev = dev2();
        let mut blocking_dev = dev2();
        let p0 = plane_ppn(&staged_dev, 0, 0);
        let p1 = plane_ppn(&staged_dev, 1, 0);
        let writes = [(p0, OobData::mapped(1)), (p1, OobData::mapped(2))];

        staged_dev.begin_staging();
        staged_dev.program_pages(&writes, SimTime::ZERO).unwrap();
        staged_dev.read_pages(&[p0, p1], SimTime::ZERO).unwrap();
        let ops = staged_dev.end_staging();
        assert_eq!(ops.len(), 2, "each fused group stages one operation");
        assert_eq!(ops[0].planes, 0b11);

        let mut t_charge = SimTime::ZERO;
        for op in &ops {
            t_charge = staged_dev.charge_op(op.op, op.chip, op.channel, op.planes, t_charge);
        }
        let mut t_block = blocking_dev.program_pages(&writes, SimTime::ZERO).unwrap();
        t_block = blocking_dev.read_pages(&[p0, p1], t_block).unwrap();
        assert_eq!(t_charge, t_block, "charge replay must equal blocking time");
        assert_eq!(staged_dev.drain_time(), blocking_dev.drain_time());
    }

    #[test]
    fn tracing_records_spans_without_changing_timing() {
        let mut plain = dev();
        let mut traced = dev();
        traced.set_tracing(true);
        assert!(traced.tracing());
        for d in [&mut plain, &mut traced] {
            let t = d
                .program_page(0, OobData::mapped(1), SimTime::ZERO)
                .unwrap();
            let t = d.read_page(0, t).unwrap();
            d.invalidate_page(0).unwrap();
            d.erase_block(0, t).unwrap();
        }
        assert_eq!(plain.drain_time(), traced.drain_time());
        assert_eq!(plain.stats(), traced.stats());
        let events = traced.take_trace();
        // program: 1 bus + 1 plane; read: 1 bus + 1 plane; erase: 1 plane.
        assert_eq!(events.len(), 5);
        let plane_ops: Vec<FlashOp> = events
            .iter()
            .filter_map(|e| match e.data {
                TraceData::PlaneOp { op, gc, .. } => {
                    assert!(!gc, "blocking calls are not charge replay");
                    Some(op)
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            plane_ops,
            vec![FlashOp::Program, FlashOp::Read, FlashOp::Erase]
        );
        assert!(events.iter().all(|e| e.end >= e.start && e.shard == 0));
        // Buffer was drained but tracing stays on.
        assert!(traced.tracing());
        assert!(traced.take_trace().is_empty());
    }

    #[test]
    fn charge_replay_marks_spans_as_gc() {
        let mut d = dev();
        d.begin_staging();
        d.program_page(0, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        let ops = d.end_staging();
        d.set_tracing(true);
        for op in &ops {
            d.charge_op(op.op, op.chip, op.channel, op.planes, SimTime::ZERO);
        }
        let events = d.take_trace();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| match e.data {
            TraceData::PlaneOp { gc, .. } | TraceData::BusXfer { gc, .. } => gc,
            _ => false,
        }));
    }

    #[test]
    fn erase_occupies_only_its_plane() {
        let mut d = dev2();
        let g = *d.geometry();
        // Block 0 of plane 1 on chip 0 has flat index blocks_per_plane.
        let flat = u64::from(g.blocks_per_plane);
        let done = d.erase_block(flat, SimTime::ZERO).unwrap();
        assert_eq!(done, SimTime::ZERO + Duration::from_millis(2));
        let p0 = plane_ppn(&d, 0, 0);
        assert_eq!(d.chip_busy_until(p0), SimTime::ZERO, "plane 0 untouched");
        let p1 = plane_ppn(&d, 1, 0);
        assert_eq!(d.chip_busy_until(p1), done);
    }
}
