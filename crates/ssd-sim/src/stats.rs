//! Device-level operation accounting.

/// The kind of a flash operation, used for statistics and the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlashOp {
    /// Page read from the NAND array.
    Read,
    /// Page program into the NAND array.
    Program,
    /// Block erase.
    Erase,
}

/// Counters of every operation the device has executed.
///
/// These are the raw inputs to the paper's write-amplification (Fig. 14c),
/// GC-frequency (Fig. 16) and energy (Fig. 22) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// Number of page reads.
    pub reads: u64,
    /// Number of page programs.
    pub programs: u64,
    /// Number of block erases.
    pub erases: u64,
    /// Page reads issued against translation (mapping metadata) pages.
    pub translation_reads: u64,
    /// Page programs issued against translation (mapping metadata) pages.
    pub translation_programs: u64,
}

impl DeviceStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation. `translation` marks mapping-metadata traffic.
    pub fn record(&mut self, op: FlashOp, translation: bool) {
        match op {
            FlashOp::Read => {
                self.reads += 1;
                if translation {
                    self.translation_reads += 1;
                }
            }
            FlashOp::Program => {
                self.programs += 1;
                if translation {
                    self.translation_programs += 1;
                }
            }
            FlashOp::Erase => self.erases += 1,
        }
    }

    /// Total number of flash operations of any kind.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.programs + self.erases
    }

    /// Page reads that hit host data pages (not mapping metadata).
    pub fn data_reads(&self) -> u64 {
        self.reads - self.translation_reads
    }

    /// Page programs that hit host data pages (not mapping metadata).
    pub fn data_programs(&self) -> u64 {
        self.programs - self.translation_programs
    }

    /// Adds another device's counters into this one, field by field.
    ///
    /// Used by multi-device frontends (e.g. a sharded FTL, where each shard
    /// owns its own device) to report one aggregate `DeviceStats`.
    pub fn merge(&mut self, other: &DeviceStats) {
        self.reads += other.reads;
        self.programs += other.programs;
        self.erases += other.erases;
        self.translation_reads += other.translation_reads;
        self.translation_programs += other.translation_programs;
    }

    /// Returns the difference `self - earlier`, field by field.
    ///
    /// Useful for computing the traffic of a single experiment phase after a
    /// warm-up. Saturates at zero so a stale snapshot cannot underflow.
    pub fn delta_since(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            reads: self.reads.saturating_sub(earlier.reads),
            programs: self.programs.saturating_sub(earlier.programs),
            erases: self.erases.saturating_sub(earlier.erases),
            translation_reads: self
                .translation_reads
                .saturating_sub(earlier.translation_reads),
            translation_programs: self
                .translation_programs
                .saturating_sub(earlier.translation_programs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_ops() {
        let mut s = DeviceStats::new();
        s.record(FlashOp::Read, false);
        s.record(FlashOp::Read, true);
        s.record(FlashOp::Program, true);
        s.record(FlashOp::Erase, false);
        assert_eq!(s.reads, 2);
        assert_eq!(s.translation_reads, 1);
        assert_eq!(s.data_reads(), 1);
        assert_eq!(s.programs, 1);
        assert_eq!(s.data_programs(), 0);
        assert_eq!(s.erases, 1);
        assert_eq!(s.total_ops(), 4);
    }

    #[test]
    fn delta_since_subtracts() {
        let mut s = DeviceStats::new();
        s.record(FlashOp::Read, false);
        let snapshot = s;
        s.record(FlashOp::Read, false);
        s.record(FlashOp::Program, false);
        let d = s.delta_since(&snapshot);
        assert_eq!(d.reads, 1);
        assert_eq!(d.programs, 1);
        assert_eq!(d.erases, 0);
    }

    #[test]
    fn merge_adds_every_field() {
        let mut a = DeviceStats::new();
        a.record(FlashOp::Read, true);
        a.record(FlashOp::Program, false);
        let mut b = DeviceStats::new();
        b.record(FlashOp::Read, false);
        b.record(FlashOp::Program, true);
        b.record(FlashOp::Erase, false);
        a.merge(&b);
        assert_eq!(a.reads, 2);
        assert_eq!(a.translation_reads, 1);
        assert_eq!(a.programs, 2);
        assert_eq!(a.translation_programs, 1);
        assert_eq!(a.erases, 1);
    }

    #[test]
    fn delta_since_saturates() {
        let empty = DeviceStats::new();
        let mut later = DeviceStats::new();
        later.record(FlashOp::Read, false);
        let d = empty.delta_since(&later);
        assert_eq!(d.reads, 0);
    }
}
