//! Per-block state tracking.

use crate::PageState;

/// The lifecycle state of one flash block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockState {
    /// Fully erased; no page has been programmed.
    #[default]
    Free,
    /// At least one page has been programmed and free pages remain.
    Open,
    /// Every page has been programmed.
    Full,
}

/// Metadata for one physical flash block: page states, a write pointer and
/// wear/validity counters.
///
/// A block enforces the NAND programming constraint: pages are programmed in
/// order (the write pointer only moves forward) and a page may not be
/// reprogrammed without erasing the whole block first.
#[derive(Debug, Clone)]
pub struct Block {
    pages: Vec<PageState>,
    next_page: u32,
    valid_pages: u32,
    erase_count: u64,
}

impl Block {
    /// Creates a fresh, erased block with `pages_per_block` pages.
    pub fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![PageState::Free; pages_per_block as usize],
            next_page: 0,
            valid_pages: 0,
            erase_count: 0,
        }
    }

    /// Total number of pages in the block.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Number of pages currently holding live data.
    pub fn valid_pages(&self) -> u32 {
        self.valid_pages
    }

    /// Number of pages that hold superseded (garbage) data.
    pub fn invalid_pages(&self) -> u32 {
        self.next_page - self.valid_pages
    }

    /// Number of pages that are still erased and programmable.
    pub fn free_pages(&self) -> u32 {
        self.page_count() - self.next_page
    }

    /// How many times this block has been erased (wear).
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// The current lifecycle state of the block.
    pub fn state(&self) -> BlockState {
        if self.next_page == 0 {
            BlockState::Free
        } else if self.free_pages() == 0 {
            BlockState::Full
        } else {
            BlockState::Open
        }
    }

    /// The state of the page at `page` within the block.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_state(&self, page: u32) -> PageState {
        self.pages[page as usize]
    }

    /// The next page index that would be programmed, if any.
    pub fn write_pointer(&self) -> Option<u32> {
        if self.free_pages() == 0 {
            None
        } else {
            Some(self.next_page)
        }
    }

    /// Marks the page at `page` as programmed and valid.
    ///
    /// Returns `false` if the page was already programmed (NAND violation) or
    /// programmed out of order.
    pub fn program(&mut self, page: u32) -> bool {
        if page as usize >= self.pages.len() {
            return false;
        }
        // NAND requires in-order programming within a block.
        if page != self.next_page || self.pages[page as usize] != PageState::Free {
            return false;
        }
        self.pages[page as usize] = PageState::Valid;
        self.next_page += 1;
        self.valid_pages += 1;
        true
    }

    /// Marks the page at `page` as invalid (its data has been superseded).
    ///
    /// Returns `false` if the page was not valid.
    pub fn invalidate(&mut self, page: u32) -> bool {
        if page as usize >= self.pages.len() || self.pages[page as usize] != PageState::Valid {
            return false;
        }
        self.pages[page as usize] = PageState::Invalid;
        self.valid_pages -= 1;
        true
    }

    /// Erases the whole block, returning every page to the free state.
    pub fn erase(&mut self) {
        for p in &mut self.pages {
            *p = PageState::Free;
        }
        self.next_page = 0;
        self.valid_pages = 0;
        self.erase_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_free() {
        let b = Block::new(8);
        assert_eq!(b.state(), BlockState::Free);
        assert_eq!(b.free_pages(), 8);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.write_pointer(), Some(0));
    }

    #[test]
    fn program_in_order_only() {
        let mut b = Block::new(4);
        assert!(b.program(0));
        assert!(!b.program(0), "reprogramming must fail");
        assert!(!b.program(2), "out-of-order programming must fail");
        assert!(b.program(1));
        assert_eq!(b.state(), BlockState::Open);
        assert_eq!(b.valid_pages(), 2);
        assert_eq!(b.free_pages(), 2);
    }

    #[test]
    fn invalidate_then_counts() {
        let mut b = Block::new(4);
        for p in 0..4 {
            assert!(b.program(p));
        }
        assert_eq!(b.state(), BlockState::Full);
        assert!(b.invalidate(1));
        assert!(!b.invalidate(1), "double invalidation must fail");
        assert_eq!(b.valid_pages(), 3);
        assert_eq!(b.invalid_pages(), 1);
        assert_eq!(b.write_pointer(), None);
    }

    #[test]
    fn erase_resets_everything_and_counts_wear() {
        let mut b = Block::new(4);
        for p in 0..4 {
            b.program(p);
        }
        b.invalidate(0);
        b.erase();
        assert_eq!(b.state(), BlockState::Free);
        assert_eq!(b.free_pages(), 4);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.erase_count(), 1);
        assert!(b.program(0));
    }

    #[test]
    fn page_state_transitions() {
        let mut b = Block::new(2);
        assert_eq!(b.page_state(0), PageState::Free);
        b.program(0);
        assert_eq!(b.page_state(0), PageState::Valid);
        b.invalidate(0);
        assert_eq!(b.page_state(0), PageState::Invalid);
    }
}
