//! The figure binaries' observability path: the shared `BenchArgs` export
//! helper must write a schema-valid Chrome trace and a well-formed metrics
//! CSV, and the GC-interference protocol's traced variant must surface the
//! scheduler's GC activity in the trace.

use bench::{BenchArgs, Scale};
use ftl_base::GcMode;
use harness::experiments::{fio_gc_interference_traced_run, fio_read_traced_run};
use harness::FtlKind;
use metrics::{chrome_trace_json, validate_chrome_trace};
use ssd_sim::{Duration, SsdConfig};
use workloads::FioPattern;

#[test]
fn export_helper_writes_valid_artifacts() {
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!("bench_obs_{}.trace.json", std::process::id()));
    let metrics_path = dir.join(format!("bench_obs_{}.metrics.csv", std::process::id()));
    let args = BenchArgs {
        trace_out: Some(trace_path.to_string_lossy().into_owned()),
        metrics_out: Some(metrics_path.to_string_lossy().into_owned()),
        metrics_interval_us: Some(50),
        ..BenchArgs::default()
    };
    assert!(args.tracing());

    let result = fio_read_traced_run(
        FtlKind::LearnedFtl,
        FioPattern::RandRead,
        2,
        SsdConfig::tiny(),
        Scale::Quick.experiment(),
    );
    assert!(result.profile.trace_events > 0);
    assert!(result.profile.requests_per_sec() > 0.0);
    args.export_observability(&result)
        .expect("export must succeed");

    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    let summary = validate_chrome_trace(&json).expect("exported trace must validate");
    assert!(summary.plane_spans > 0);
    assert!(summary.host_spans > 0);
    assert!(summary.flows > 0);

    let csv = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some(
            "t_us,plane_util,gc_plane_util,bus_util,host_qdepth,gc_qdepth,\
             gc_debt,cmt_hits,reads_classified,cmt_hit_rate"
        )
    );
    assert!(lines.next().is_some(), "metrics CSV must have data rows");

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);
}

#[test]
fn traced_gc_interference_surfaces_gc_activity() {
    // The fig24 protocol's traced variant at its write-heavy scheduled-GC
    // point: the trace must contain GC instants/spans, not just host I/O.
    let result = fio_gc_interference_traced_run(
        FtlKind::LearnedFtl,
        4,
        32,
        1,
        GcMode::Scheduled,
        Duration::from_micros(900),
        bench::shard_scaling_device(Scale::Quick),
        Scale::Quick.experiment(),
    );
    assert!(
        result.stats.gc_count > 0,
        "the write-heavy point must collect"
    );
    let summary = validate_chrome_trace(&chrome_trace_json(&result.trace))
        .expect("traced GC run must validate");
    assert!(summary.gc_events > 0, "no GC events in the trace");
    assert!(summary.cmd_spans > 0, "no scheduler lifecycle spans");
    assert!(summary.counters > 0, "no queue-depth counter samples");
    assert!(summary.plane_spans > 0);
    assert!(summary.host_spans > 0);
}
