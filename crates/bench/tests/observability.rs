//! The figure binaries' observability path: the shared `BenchArgs` export
//! helper must write a schema-valid Chrome trace and a well-formed metrics
//! CSV, and the GC-interference protocol's traced variant must surface the
//! scheduler's GC activity in the trace.

use bench::{BenchArgs, Scale};
use ftl_base::GcMode;
use harness::experiments::{fio_gc_interference_traced_run, fio_read_traced_run};
use harness::FtlKind;
use metrics::{chrome_trace_json, validate_analysis_json, validate_chrome_trace};
use ssd_sim::{Duration, SsdConfig};
use workloads::FioPattern;

#[test]
fn export_helper_writes_valid_artifacts() {
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!("bench_obs_{}.trace.json", std::process::id()));
    let metrics_path = dir.join(format!("bench_obs_{}.metrics.csv", std::process::id()));
    let analysis_path = dir.join(format!("bench_obs_{}.analysis.json", std::process::id()));
    let args = BenchArgs {
        trace_out: Some(trace_path.to_string_lossy().into_owned()),
        metrics_out: Some(metrics_path.to_string_lossy().into_owned()),
        analyze_out: Some(analysis_path.to_string_lossy().into_owned()),
        metrics_interval_us: Some(50),
        ..BenchArgs::default()
    };
    assert!(args.tracing());

    let result = fio_read_traced_run(
        FtlKind::LearnedFtl,
        FioPattern::RandRead,
        2,
        SsdConfig::tiny(),
        Scale::Quick.experiment(),
    );
    assert!(result.profile.trace_events > 0);
    assert!(result.profile.requests_per_sec() > 0.0);
    args.export_observability("observability-test", &result)
        .expect("export must succeed");

    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    let summary = validate_chrome_trace(&json).expect("exported trace must validate");
    assert!(summary.plane_spans > 0);
    assert!(summary.host_spans > 0);
    assert!(summary.flows > 0);

    let csv = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some(
            "t_us,plane_util,gc_plane_util,bus_util,host_qdepth,gc_qdepth,\
             gc_debt,cmt_hits,reads_classified,cmt_hit_rate"
        )
    );
    assert!(lines.next().is_some(), "metrics CSV must have data rows");

    // The analysis artifact must validate, carry the figure provenance, and
    // its exported export must be byte-stable against an in-process re-run.
    let analysis = std::fs::read_to_string(&analysis_path).expect("analysis file written");
    let summary = validate_analysis_json(&analysis).expect("exported analysis must validate");
    assert_eq!(summary.requests, result.requests);
    assert!(summary.exemplars > 0, "tail exemplars missing");
    assert!(analysis.contains("\"figure\":\"observability-test\""));
    assert_eq!(
        analysis,
        metrics::analysis_json(&result.trace, "observability-test"),
        "analysis export must be a pure function of the trace"
    );

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);
    let _ = std::fs::remove_file(&analysis_path);
}

#[test]
fn traced_gc_interference_surfaces_gc_activity() {
    // The fig24 protocol's traced variant at its write-heavy scheduled-GC
    // point: the trace must contain GC instants/spans, not just host I/O.
    let result = fio_gc_interference_traced_run(
        FtlKind::LearnedFtl,
        4,
        32,
        1,
        GcMode::Scheduled,
        Duration::from_micros(900),
        bench::shard_scaling_device(Scale::Quick),
        Scale::Quick.experiment(),
    );
    assert!(
        result.stats.gc_count > 0,
        "the write-heavy point must collect"
    );
    let summary = validate_chrome_trace(&chrome_trace_json(&result.trace))
        .expect("traced GC run must validate");
    assert!(summary.gc_events > 0, "no GC events in the trace");
    assert!(summary.cmd_spans > 0, "no scheduler lifecycle spans");
    assert!(summary.counters > 0, "no queue-depth counter samples");
    assert!(summary.plane_spans > 0);
    assert!(summary.host_spans > 0);

    // The analysis engine must see the same GC activity as interference:
    // GC plane work exists, some host request time is attributed to it, and
    // the decomposition invariant holds under real GC contention.
    let analysis = metrics::analyze(&result.trace);
    let tax = analysis.gc_tax();
    assert!(tax.gc_plane_busy_ns > 0, "no GC plane work in the analysis");
    assert!(
        tax.host_wait_ns > 0,
        "write-heavy scheduled GC must charge some host time to GC"
    );
    assert!(tax.affected_requests > 0);
    for r in &analysis.requests {
        assert_eq!(
            r.components_sum_ns(),
            r.latency_ns(),
            "req {}: decomposition must sum to measured latency",
            r.req
        );
    }
}
