//! Noisy-neighbour isolation: one write-heavy aggressor tenant vs three
//! read-mostly victim tenants sharing a sharded FTL, with and without the
//! scheduler's weighted per-tenant arbitration.
//!
//! This extends the paper: its evaluation runs one workload at a time, but
//! production SSDs serve several namespaces at once, and a single
//! write-heavy tenant — whose writes drag blocking GC into every shard's
//! timeline — inflates the read tails of everyone else. PR 9 generalises the
//! two-class host/GC arbitration into weighted per-tenant queues; this
//! binary measures what that buys.
//!
//! Four tenants split the logical space into disjoint quarters (LPNs stripe
//! round-robin across shards, so every tenant's traffic crosses every
//! shard): tenant 0 offers 95%-write traffic at a high arrival rate with
//! weight 1, tenants 1–3 offer 95%-read traffic with weight 8. Each tenant's
//! Poisson arrivals queue in per-shard backlogs; a shard serves one request
//! at a time, picking the next tenant either by weighted round-robin with
//! per-tenant starvation bounds (*isolated*) or in plain arrival order
//! (*FIFO* — what a namespace-oblivious host does). Latencies count from the
//! true arrival, so queueing behind the aggressor's backlog is measured —
//! that is precisely the interference isolation removes.
//!
//! Shape check (enforced at exit): at shards=4, the victims' aggregate p99
//! under weighted isolation is strictly better than under FIFO admission.

use ftl_base::GcMode;
use harness::experiments::tenant_noisy_neighbour_run;
use harness::{FtlKind, TenantRunResult};
use metrics::{LatencyHistogram, Table};
use ssd_sim::Duration;
use workloads::TenantSpec;

use bench::{print_header, print_table_with_verdict, shard_scaling_device, times, BenchArgs};

/// The aggressor's weighted-round-robin share (one contended slot per
/// victim-weight × victims).
const AGGRESSOR_WEIGHT: u32 = 1;
/// Each victim's weighted-round-robin share.
const VICTIM_WEIGHT: u32 = 8;
/// Read-mostly victim tenants sharing the device with the aggressor.
const VICTIMS: usize = 3;

/// The tenant line-up: one flooding write-heavy aggressor, `VICTIMS`
/// read-mostly victims at a moderate rate. Arrival gaps are sized against
/// the quick/standard devices' single-page service times so backlogs
/// actually form — with idle shards, admission order cannot matter.
fn tenant_specs(requests: u64) -> Vec<TenantSpec> {
    let mut specs =
        vec![TenantSpec::write_heavy(Duration::from_micros(20), requests)
            .with_weight(AGGRESSOR_WEIGHT)];
    for _ in 0..VICTIMS {
        specs.push(
            TenantSpec::read_mostly(Duration::from_micros(60), requests / 2)
                .with_weight(VICTIM_WEIGHT),
        );
    }
    specs
}

/// The victims' aggregate p99: their per-tenant histograms merged.
fn victim_p99(run: &TenantRunResult) -> Duration {
    let mut merged = LatencyHistogram::new();
    for lane in &run.tenants[1..] {
        merged.merge(&lane.latencies);
    }
    merged.p99()
}

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    let device = shard_scaling_device(scale);
    let shards = if args.shards > 1 { args.shards } else { 4 };
    print_header(
        "Fig. 28 (extension) — noisy neighbour: weighted per-tenant arbitration vs FIFO admission",
        "weighted per-tenant queues at the shard admission point shield read-mostly \
         tenants' tails from a write-heavy aggressor the FIFO baseline lets through",
        scale,
    );
    println!("device: {}, shards: {shards}", device.geometry);

    let experiment = scale.experiment();
    let requests = experiment.single_stream_ops;
    let kind = FtlKind::Dftl;

    let mut table = Table::new(vec![
        "admission",
        "tenant",
        "mix",
        "weight",
        "requests",
        "mean (us)",
        "P99 (ms)",
        "max (ms)",
    ]);

    let mut runs: Vec<(bool, TenantRunResult)> = Vec::new();
    for isolate in [false, true] {
        let mut run = tenant_noisy_neighbour_run(
            kind,
            tenant_specs(requests),
            shards,
            GcMode::Blocking,
            device,
            experiment,
            isolate,
            false,
        );
        let specs = tenant_specs(requests);
        for lane in &mut run.tenants {
            let spec = &specs[lane.tenant as usize];
            table.add_row(vec![
                if isolate { "weighted" } else { "FIFO" }.to_string(),
                format!(
                    "{} ({})",
                    lane.tenant,
                    if lane.tenant == 0 {
                        "aggressor"
                    } else {
                        "victim"
                    }
                ),
                format!("{}% read", (spec.read_fraction * 100.0).round()),
                spec.weight.to_string(),
                lane.requests.to_string(),
                format!("{:.0}", lane.latencies.mean().as_micros_f64()),
                format!("{:.2}", lane.latencies.p99().as_micros_f64() / 1000.0),
                format!("{:.2}", lane.latencies.max().as_micros_f64() / 1000.0),
            ]);
        }
        runs.push((isolate, run));
    }

    // ---- shape check -------------------------------------------------------
    let fifo = &runs[0].1;
    let isolated = &runs[1].1;
    let p99_fifo = victim_p99(fifo);
    let p99_isolated = victim_p99(isolated);
    let ok = p99_isolated < p99_fifo;
    let verdict = format!(
        "victims' aggregate p99: weighted {:.2} ms vs FIFO {:.2} ms ({} better) — {}",
        p99_isolated.as_micros_f64() / 1000.0,
        p99_fifo.as_micros_f64() / 1000.0,
        times(p99_fifo.as_micros_f64() / p99_isolated.as_micros_f64().max(f64::MIN_POSITIVE)),
        if ok {
            "weighted isolation shields the victims"
        } else {
            "ISOLATION DID NOT HELP"
        }
    );
    print_table_with_verdict(&table, &verdict);

    // Observability: re-run the weighted point with tracing on and export it
    // — the analysis document's per-tenant section breaks the victims' and
    // the aggressor's latency into queue-wait / translation / NAND / bus /
    // GC components.
    if args.tracing() {
        let traced = tenant_noisy_neighbour_run(
            kind,
            tenant_specs(requests),
            shards,
            GcMode::Blocking,
            device,
            experiment,
            true,
            true,
        );
        println!("traced run: DFTL, weighted isolation, shards={shards}");
        args.export_observability("fig28_noisy_neighbour", &traced.result)
            .expect("writing observability output failed");
    }

    if !ok {
        std::process::exit(1);
    }
}
