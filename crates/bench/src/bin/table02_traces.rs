//! Table II: the characteristics of the four traces, compared with the
//! synthetic stand-ins this reproduction generates.

use bench::{print_header, print_table_with_verdict, BenchArgs, Scale};
use metrics::Table;
use workloads::{SyntheticTrace, TraceKind};

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Table II — trace characteristics (paper vs synthetic stand-ins)",
        "the synthetic traces must match the paper's I/O counts, mean sizes and read ratios",
        scale,
    );
    let device = scale.device();
    let sample_len = match scale {
        Scale::Quick => 5_000,
        _ => 50_000,
    };

    let mut table = Table::new(vec![
        "trace",
        "# of I/O (paper)",
        "avg I/O size (paper)",
        "read ratio (paper)",
        "avg I/O size (generated)",
        "read ratio (generated)",
    ]);
    let mut max_read_error: f64 = 0.0;
    for kind in TraceKind::all() {
        let trace = SyntheticTrace::generate(kind, device.logical_pages(), sample_len, 1);
        max_read_error =
            max_read_error.max((trace.measured_read_ratio() - kind.read_ratio()).abs());
        table.add_row(vec![
            kind.label().to_string(),
            kind.io_count().to_string(),
            format!("{:.2} KiB", kind.average_io_kib()),
            format!("{:.2}%", kind.read_ratio() * 100.0),
            format!("{:.2} KiB", trace.measured_mean_io_kib()),
            format!("{:.2}%", trace.measured_read_ratio() * 100.0),
        ]);
    }
    print_table_with_verdict(
        &table,
        &format!(
            "generated read ratios match Table II within {:.1} percentage points; \
             full-length traces use the paper's I/O counts when LEARNEDFTL_SCALE=paper",
            max_read_error * 100.0
        ),
    );

    bench::export_default_observability(&args, "table02_traces");
}
