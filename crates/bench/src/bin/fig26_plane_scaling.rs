//! Plane-scaling sweep: write throughput for 1/2/4 planes per chip at equal
//! raw capacity, for DFTL / TPFTL / LearnedFTL / ideal.
//!
//! This goes beyond the paper: its FEMU platform models one plane per chip,
//! so the plane field of the geometry is dead weight and all intra-chip
//! parallelism is lost. The simulator now keeps one timeline per plane,
//! forms multi-plane program groups out of plane-aligned allocation stripes
//! (`ftl-base`'s `DynamicDataPool::allocate_stripe`), and lets the
//! LearnedFTL group allocator's VPPN-order rows cover every plane — so
//! splitting a chip's blocks into more planes must buy write throughput at
//! identical capacity. Two shape checks anchor the sweep (enforced, CI exits
//! non-zero on failure):
//!
//! * planes=2 must deliver strictly more write MiB/s than planes=1 for DFTL
//!   and LearnedFTL (the enforced acceptance pair; the other FTLs are
//!   reported),
//! * planes=1 runs the exact historical single-timeline model — the
//!   workspace equivalence suites pin that bit-for-bit, this binary only
//!   reports the throughput next to the multi-plane columns.
//!
//! Run with `--planes N` to sweep `{1, N}` instead of the default `{1, 2, 4}`.

use bench::{plane_scaling_device, print_header, print_table_with_verdict, times, BenchArgs};
use harness::experiments::fio_write_qd_run;
use harness::FtlKind;
use metrics::Table;
use workloads::FioPattern;

/// Pages per write request: enough to fan one request out across several
/// planes of a chip once the chips are saturated.
const PAGES_PER_REQUEST: u32 = 8;
/// Host queue depth of the measured phase.
const DEPTH: usize = 16;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    let base = plane_scaling_device(scale);
    print_header(
        "Fig. 26 (extension) — plane-scaling sweep, FIO randwrite 32 KiB, QD16",
        "per-plane timelines + plane-striped allocation turn planes into real \
         parallel units: planes=2 beats planes=1 write throughput at equal capacity",
        scale,
    );
    println!(
        "base device: {} (planes swept at equal capacity)",
        base.geometry
    );
    let plane_counts: Vec<u32> = if args.planes == 1 {
        vec![1, 2, 4]
    } else {
        vec![1, args.planes]
    };
    println!("plane counts swept: {plane_counts:?}");
    println!();

    let experiment = scale.experiment();
    let threads = scale.fio_threads().min(8);
    let kinds = [
        FtlKind::Dftl,
        FtlKind::Tpftl,
        FtlKind::LearnedFtl,
        FtlKind::Ideal,
    ];

    let mut table = Table::new(vec![
        "FTL",
        "planes",
        "write MiB/s",
        "IOPS",
        "P99 (us)",
        "programs",
    ]);
    // mibs[kind][plane_index]
    let mut mibs = vec![vec![0.0f64; plane_counts.len()]; kinds.len()];
    for (ki, &kind) in kinds.iter().enumerate() {
        for (pi, &planes) in plane_counts.iter().enumerate() {
            let device = base.with_planes(planes);
            let mut r = fio_write_qd_run(
                kind,
                FioPattern::RandWrite,
                threads,
                PAGES_PER_REQUEST,
                DEPTH,
                device,
                experiment,
            );
            mibs[ki][pi] = r.mib_per_sec();
            table.add_row(vec![
                kind.label().to_string(),
                planes.to_string(),
                format!("{:.1}", r.mib_per_sec()),
                format!("{:.0}", r.iops()),
                format!("{:.1}", r.p99().as_micros_f64()),
                r.device.programs.to_string(),
            ]);
        }
    }

    // planes=2 (the second swept count) vs planes=1.
    let gain = |ki: usize| mibs[ki][1] / mibs[ki][0].max(f64::MIN_POSITIVE);
    let enforced = [FtlKind::Dftl, FtlKind::LearnedFtl];
    let mut scaling_holds = true;
    for &kind in &enforced {
        let ki = kinds.iter().position(|&k| k == kind).expect("kind swept");
        if mibs[ki][1] <= mibs[ki][0] {
            scaling_holds = false;
        }
    }
    let dftl = kinds
        .iter()
        .position(|&k| k == FtlKind::Dftl)
        .expect("DFTL is always swept");
    let learned = kinds
        .iter()
        .position(|&k| k == FtlKind::LearnedFtl)
        .expect("LearnedFTL is always swept");
    print_table_with_verdict(
        &table,
        &format!(
            "planes={} vs planes=1 write throughput: DFTL {}, LearnedFTL {} \
             (must be > 1.0 for both): {}",
            plane_counts[1],
            times(gain(dftl)),
            times(gain(learned)),
            if scaling_holds {
                "yes"
            } else {
                "NO — planes did not scale"
            }
        ),
    );

    bench::export_default_observability(&args, "fig26_plane_scaling");

    if !scaling_holds {
        std::process::exit(1);
    }
}
