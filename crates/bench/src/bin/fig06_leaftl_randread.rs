//! Figure 6: LeaFTL vs TPFTL under FIO random reads — normalised throughput
//! and the single/double/triple flash-read breakdown of LeaFTL.
//!
//! Paper's finding: LeaFTL is ~29 % slower than TPFTL under random reads
//! because 52 % of its reads become double reads and 43 % become triple reads
//! (only ~5 % are served with a single flash read).

use bench::{percent, print_header, print_table_with_verdict, BenchArgs};
use harness::experiments::fio_read_run;
use harness::FtlKind;
use metrics::Table;
use workloads::FioPattern;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 6 — LeaFTL vs TPFTL under random reads",
        "LeaFTL ~29% slower than TPFTL; LeaFTL reads split ~5% single / 52% double / 43% triple",
        scale,
    );
    let device = scale.device();
    let experiment = scale.experiment();
    let threads = scale.fio_threads();

    let tpftl = fio_read_run(
        FtlKind::Tpftl,
        FioPattern::RandRead,
        threads,
        device,
        experiment,
    );
    let leaftl = fio_read_run(
        FtlKind::LeaFtl,
        FioPattern::RandRead,
        threads,
        device,
        experiment,
    );

    let mut table = Table::new(vec![
        "FTL",
        "RandRead MiB/s",
        "normalized",
        "single",
        "double",
        "triple",
    ]);
    for result in [&tpftl, &leaftl] {
        let (single, double, triple) = result.multi_read_breakdown();
        table.add_row(vec![
            result.ftl_name.clone(),
            format!("{:.1}", result.mib_per_sec()),
            format!("{:.2}", result.normalized_throughput(&tpftl)),
            percent(single),
            percent(double),
            percent(triple),
        ]);
    }
    let (_, double, triple) = leaftl.multi_read_breakdown();
    let verdict = format!(
        "LeaFTL reaches {:.2}x of TPFTL (paper: 0.71x, i.e. slower) and {} of its reads need \
         more than one flash access (paper: ~95%)",
        leaftl.normalized_throughput(&tpftl),
        percent(double + triple)
    );
    print_table_with_verdict(&table, &verdict);

    bench::export_default_observability(&args, "fig06_leaftl_randread");
}
