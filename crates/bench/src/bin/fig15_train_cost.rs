//! Figure 15: the computational cost of the extra operations LearnedFTL adds —
//! sorting one GTD entry's LPNs, training its model, and one prediction.
//!
//! Paper's finding: on an ARM Cortex-A72, sorting + training one GTD entry
//! costs on the order of 50 µs and one prediction costs ~0.65 µs, i.e. the
//! equivalent of a few flash reads per GC and a negligible cost per read.

use harness::wallclock::WallTimer;

use bench::{print_header, BenchArgs};
use learned_index::Point;
use learnedftl::InPlaceModel;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

fn measure<R>(iterations: u32, mut f: impl FnMut() -> R) -> f64 {
    let start = WallTimer::start();
    for _ in 0..iterations {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iterations)
}

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 15 — cost of sorting / training / prediction per GTD entry",
        "sorting+training cost tens of microseconds per entry; a prediction costs well under a microsecond",
        scale,
    );
    let mut rng = StdRng::seed_from_u64(42);
    let iterations = 2_000;

    // One GTD entry: 512 LPNs mapped to VPPNs that form a handful of runs, as
    // left behind by group GC.
    let mut points: Vec<Point> = (0..512u64)
        .map(|i| Point::new(i, 1_000_000 + i + (i / 128) * 50_000))
        .collect();

    let sort_us = measure(iterations, || {
        let mut shuffled = points.clone();
        shuffled.shuffle(&mut rng);
        shuffled.sort_unstable_by_key(|p| p.key);
        shuffled
    });

    points.sort_by_key(|p| p.key);
    let train_us = measure(iterations, || {
        let mut model = InPlaceModel::new(0, 512, 8);
        model.train(&points);
        model
    });

    let mut model = InPlaceModel::new(0, 512, 8);
    model.train(&points);
    let predict_us = measure(200_000, || {
        let lpn = rng.gen_range(0..512);
        model.predict(lpn)
    });

    println!("operation    measured (us)   paper (ARM A72)");
    println!("---------------------------------------------");
    println!("sorting      {sort_us:>10.2}      ~50 us (sort+train combined)");
    println!("training     {train_us:>10.2}");
    println!("prediction   {predict_us:>10.3}      ~0.65 us");
    println!();
    println!(
        "shape check: sorting+training = {:.1} us per entry (paper: tens of microseconds, \
         i.e. roughly one flash read of 40 us), prediction = {:.3} us (paper: sub-microsecond)",
        sort_us + train_us,
        predict_us
    );

    bench::export_default_observability(&args, "fig15_train_cost");
}
