//! Figure 18: (a) FIO random-write throughput of LearnedFTL with and without
//! charging the sorting/training computation, and (b) FIO read throughput of
//! LearnedFTL vs an "ideal LearnedFTL" that skips model predictions.
//!
//! Paper's finding: both gaps are below ~1 %, i.e. neither the training on the
//! write path (via GC) nor the prediction on the read path costs anything
//! noticeable.

use bench::{print_header, print_table_with_verdict, BenchArgs, Scale};
use ftl_base::Ftl;
use harness::Runner;
use learnedftl::{LearnedFtl, LearnedFtlConfig};
use metrics::Table;
use workloads::{warmup, FioPattern, FioWorkload};

fn run_write(scale: Scale, charge: bool) -> f64 {
    let device = scale.device();
    let experiment = scale.experiment();
    let mut ftl = LearnedFtl::new(
        device,
        LearnedFtlConfig::default().with_charge_training_time(charge),
    );
    warmup::sequential_fill(
        &mut ftl,
        experiment.warmup_io_pages,
        1,
        ssd_sim::SimTime::ZERO,
    );
    let mut wl = FioWorkload::new(
        FioPattern::RandWrite,
        ftl.logical_pages(),
        scale.fio_threads(),
        1,
        experiment.ops_per_stream,
        17,
    );
    Runner::new().run(&mut ftl, &mut wl).mib_per_sec()
}

fn run_read(scale: Scale, pattern: FioPattern, ideal_prediction: bool) -> f64 {
    let device = scale.device();
    let experiment = scale.experiment();
    let mut ftl = LearnedFtl::new(
        device,
        LearnedFtlConfig::default().with_ideal_prediction(ideal_prediction),
    );
    warmup::paper_warmup(
        &mut ftl,
        experiment.warmup_io_pages,
        experiment.warmup_overwrites,
        19,
    );
    let mut wl = FioWorkload::new(
        pattern,
        ftl.logical_pages(),
        scale.fio_threads(),
        1,
        experiment.ops_per_stream,
        23,
    );
    Runner::new().run(&mut ftl, &mut wl).mib_per_sec()
}

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 18 — cost of training (writes) and of model prediction (reads)",
        "both with/without gaps are below ~1%",
        scale,
    );

    // (a) random writes with and without charging sort+train time.
    let with = run_write(scale, true);
    let without = run_write(scale, false);
    let mut a = Table::new(vec!["configuration", "RandWrite MiB/s"]);
    a.add_row(vec![
        "with training+sorting charged".into(),
        format!("{with:.1}"),
    ]);
    a.add_row(vec![
        "without training+sorting".into(),
        format!("{without:.1}"),
    ]);
    let gap_a = if without > 0.0 {
        (without - with).abs() / without
    } else {
        0.0
    };
    println!("Fig. 18(a) — write path");
    print_table_with_verdict(
        &a,
        &format!("throughput gap {:.2}% (paper: < 0.7%)", gap_a * 100.0),
    );

    // (b) reads: normal prediction vs ideal (bitmap-gated direct mapping).
    let mut b = Table::new(vec![
        "pattern",
        "LearnedFTL MiB/s",
        "ideal-LearnedFTL MiB/s",
        "gap",
    ]);
    let mut worst_gap: f64 = 0.0;
    for pattern in [FioPattern::RandRead, FioPattern::SeqRead] {
        let normal = run_read(scale, pattern, false);
        let ideal = run_read(scale, pattern, true);
        let gap = if ideal > 0.0 {
            (ideal - normal).abs() / ideal
        } else {
            0.0
        };
        worst_gap = worst_gap.max(gap);
        b.add_row(vec![
            pattern.label().to_string(),
            format!("{normal:.1}"),
            format!("{ideal:.1}"),
            format!("{:.2}%", gap * 100.0),
        ]);
    }
    println!("Fig. 18(b) — read path");
    print_table_with_verdict(
        &b,
        &format!(
            "worst read-path gap {:.2}% (paper: < 1%)",
            worst_gap * 100.0
        ),
    );

    bench::export_default_observability(&args, "fig18_overhead");
}
