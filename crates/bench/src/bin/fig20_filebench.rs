//! Figure 20 (and Table I): normalised Filebench throughput of every FTL.
//!
//! Paper's finding: LearnedFTL outperforms the other schemes by 1.1–2.3×
//! across fileserver, webserver and varmail, because the CMT still captures
//! the locality while the learned models catch the reads the CMT misses.

use bench::{print_header, print_table_with_verdict, BenchArgs};
use harness::experiments::filebench_run;
use harness::FtlKind;
use metrics::Table;
use workloads::FilebenchPreset;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 20 — Filebench normalized throughput (all FTLs); Table I configurations",
        "LearnedFTL outperforms the other schemes by 1.1-2.3x",
        scale,
    );

    // Table I — the workload configurations themselves.
    let mut table1 = Table::new(vec!["name", "fileset", "feature", "threads"]);
    table1.add_row(vec![
        "fileserver".into(),
        "225,000 x 128KB".into(),
        "write heavy".into(),
        "50".into(),
    ]);
    table1.add_row(vec![
        "webserver".into(),
        "825,000 x 16KB".into(),
        "read heavy".into(),
        "64".into(),
    ]);
    table1.add_row(vec![
        "varmail".into(),
        "475,000 x 16KB".into(),
        "all read / 1:1".into(),
        "64".into(),
    ]);
    println!("Table I — Filebench configurations (as modelled by workloads::filebench)");
    println!("{}", table1.render());

    let device = scale.device();
    let experiment = scale.experiment();
    let mut table = Table::new(vec![
        "workload",
        "DFTL",
        "TPFTL",
        "LeaFTL",
        "LearnedFTL",
        "ideal",
        "LearnedFTL/best baseline",
    ]);
    let mut min_gain = f64::MAX;
    let mut max_gain: f64 = 0.0;
    for preset in FilebenchPreset::all() {
        let mut mibs = Vec::new();
        for kind in FtlKind::all() {
            mibs.push(filebench_run(kind, preset, device, experiment).mib_per_sec());
        }
        let best_baseline = mibs[0].max(mibs[1]).max(mibs[2]);
        let gain = if best_baseline > 0.0 {
            mibs[3] / best_baseline
        } else {
            0.0
        };
        min_gain = min_gain.min(gain);
        max_gain = max_gain.max(gain);
        table.add_row(vec![
            preset.label().to_string(),
            format!("{:.1}", mibs[0]),
            format!("{:.1}", mibs[1]),
            format!("{:.1}", mibs[2]),
            format!("{:.1}", mibs[3]),
            format!("{:.1}", mibs[4]),
            format!("{gain:.2}"),
        ]);
    }
    print_table_with_verdict(
        &table,
        &format!(
            "LearnedFTL vs the best baseline ranges {min_gain:.2}x – {max_gain:.2}x \
             (paper: 1.1x – 2.3x vs the other schemes)"
        ),
    );

    bench::export_default_observability(&args, "fig20_filebench");
}
