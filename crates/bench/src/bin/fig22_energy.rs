//! Figure 22: energy consumption under the four traces, normalised to TPFTL.
//!
//! Paper's finding: on the read-intensive WebSearch traces LearnedFTL uses
//! 1.09–1.2× less energy than TPFTL/LeaFTL (because it eliminates translation
//! reads), while on the write-heavy Systor trace all FTLs are similar (writes
//! and erases dominate the energy budget).

use bench::{print_header, print_table_with_verdict, BenchArgs};
use harness::experiments::trace_run;
use harness::FtlKind;
use metrics::{EnergyModel, Table};
use workloads::TraceKind;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 22 — normalized energy under the four traces",
        "LearnedFTL saves 1.09-1.2x energy on the read-intensive traces; Systor is a wash",
        scale,
    );
    let device = scale.device();
    let experiment = scale.experiment();
    let model = EnergyModel::default();
    let kinds = [
        FtlKind::Tpftl,
        FtlKind::LeaFtl,
        FtlKind::LearnedFtl,
        FtlKind::Ideal,
    ];
    let trace_len = experiment.single_stream_ops;
    let streams = scale.fio_threads().min(16);

    let mut table = Table::new(vec!["trace", "FTL", "energy (J)", "normalized to TPFTL"]);
    let mut websearch_savings = Vec::new();
    let mut systor_ratio = 1.0;
    for trace in TraceKind::all() {
        let mut baseline_energy = 0.0;
        let mut learned_ratio = 1.0;
        for kind in kinds {
            let result = trace_run(kind, trace, streams, trace_len, device, experiment);
            let joules = model.total_joules(&result.device);
            if kind == FtlKind::Tpftl {
                baseline_energy = joules;
            }
            let normalized = if baseline_energy > 0.0 {
                joules / baseline_energy
            } else {
                0.0
            };
            if kind == FtlKind::LearnedFtl {
                learned_ratio = normalized;
            }
            table.add_row(vec![
                trace.label().to_string(),
                kind.label().to_string(),
                format!("{joules:.4}"),
                format!("{normalized:.3}"),
            ]);
        }
        if trace == TraceKind::Systor17 {
            systor_ratio = learned_ratio;
        } else {
            websearch_savings.push(1.0 / learned_ratio.max(1e-9));
        }
    }
    let avg_saving = websearch_savings.iter().sum::<f64>() / websearch_savings.len().max(1) as f64;
    print_table_with_verdict(
        &table,
        &format!(
            "on the WebSearch traces LearnedFTL uses {avg_saving:.2}x less energy than TPFTL \
             (paper: 1.09-1.2x); on Systor the ratio is {systor_ratio:.2} (paper: ~1.0)"
        ),
    );

    bench::export_default_observability(&args, "fig22_energy");
}
