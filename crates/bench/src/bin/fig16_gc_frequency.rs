//! Figure 16: GC frequency over time under FIO random and sequential writes
//! for all FTL designs.
//!
//! Paper's finding: LearnedFTL's group-based allocation does not trigger more
//! garbage collections than the baselines — its total GC count is slightly
//! lower than DFTL/TPFTL/LeaFTL under both random and sequential writes.

use bench::{print_header, print_table_with_verdict, BenchArgs};
use harness::experiments::fio_write_run;
use harness::FtlKind;
use metrics::{GcTimeline, Table};
use ssd_sim::Duration;
use workloads::FioPattern;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 16 — GC frequency under FIO random and sequential writes",
        "LearnedFTL triggers no more GCs than the baselines (slightly fewer in the paper)",
        scale,
    );
    let device = scale.device();
    let experiment = scale.experiment();
    let threads = scale.fio_threads();

    for pattern in [FioPattern::RandWrite, FioPattern::SeqWrite] {
        let mut table = Table::new(vec![
            "FTL",
            "total GCs",
            "peak GCs per window",
            "mean GCs per window",
        ]);
        let mut learned_total = 0u64;
        let mut baseline_max = 0u64;
        for kind in FtlKind::all() {
            let result = fio_write_run(kind, pattern, threads, device, experiment);
            let window = Duration::from_millis(100);
            let timeline = GcTimeline::from_events(&result.stats.gc_events, window);
            if kind == FtlKind::LearnedFtl {
                learned_total = timeline.total();
            } else if kind != FtlKind::Ideal {
                baseline_max = baseline_max.max(timeline.total());
            }
            table.add_row(vec![
                kind.label().to_string(),
                timeline.total().to_string(),
                timeline.peak().to_string(),
                format!("{:.2}", timeline.mean_per_bucket()),
            ]);
        }
        println!("pattern: {}", pattern.label());
        let verdict = format!(
            "LearnedFTL triggered {learned_total} GCs vs at most {baseline_max} for the \
             baselines — {}",
            if learned_total <= baseline_max + baseline_max / 5 {
                "comparable or fewer, as in the paper"
            } else {
                "MORE than the baselines, unlike the paper"
            }
        );
        print_table_with_verdict(&table, &verdict);
    }

    bench::export_default_observability(&args, "fig16_gc_frequency");
}
