//! Simulator throughput benchmark (extension figure 27): how fast the
//! *simulator itself* runs, as a machine-readable `BENCH_fig27.json`
//! artifact.
//!
//! Sweeps FTL × shard count × execution backend over the same warmed QD16
//! random-read protocol and records, per configuration:
//!
//! * host requests simulated per wall-clock second (untraced, best of
//!   [`TIMING_REPS`] freshly prepared runs — [`harness::SelfProfile`]),
//! * structured trace events recorded per wall-clock second (one traced
//!   run), so tracing overhead is visible next to the untraced rate,
//! * the per-phase allocation profile when built with
//!   `--features bench/alloc-profile` (the measurement half of the
//!   allocation-free hot-path roadmap item).
//!
//! Unlike the simulated-time figures these numbers measure the host, so the
//! artifact embeds its own self-consistency verdicts instead of promising
//! byte stability: the traced run must reproduce the untraced run's
//! simulated-time results exactly (tracing must observe, not perturb), the
//! threaded backend must reproduce the simulated backend's, the recorded
//! event count must match the trace length, and every rate must be finite.
//! `metrics::validate_bench_artifact` re-checks the written artifact (shape,
//! bounds, and that every verdict is `true`); the binary exits non-zero if
//! any check failed. CI runs `--quick` and uploads the artifact so later
//! optimisation PRs have a trajectory to regress against.

use bench::{print_header, print_table_with_verdict, shard_scaling_device, BenchArgs, Scale};
use ftl_base::Ftl;
use harness::alloc_profile::{self, Phase};
use harness::experiments::{warmed_sharded_fio_setup_with, ExperimentScale};
use harness::{FtlKind, Runner, ShardedRunResult};
use learnedftl::LearnedFtlConfig;
use metrics::Table;
use workloads::FioPattern;

const STREAMS: usize = 16;
const DEPTH: usize = 16;
const SHARD_COUNTS: [usize; 2] = [1, 4];
const KINDS: [FtlKind; 2] = [FtlKind::Dftl, FtlKind::LearnedFtl];

/// Untraced timing runs per configuration; the best (lowest-wall) one is
/// reported. Simulated-time results are deterministic, so any rep's
/// measurements can serve as the reference.
const TIMING_REPS: usize = 2;

/// The quick preset's per-stream count is sized for simulated-time smoke
/// checks; a wall-clock rate needs enough requests that the measured loop
/// dominates start-up (same floor as the fig25 wall-clock figure).
fn throughput_scale(scale: Scale) -> ExperimentScale {
    let mut experiment = scale.experiment();
    experiment.ops_per_stream = experiment.ops_per_stream.max(2_000);
    experiment
}

/// One identically prepared frontend + measured workload.
/// `charge_training_time(false)` keeps LearnedFTL's simulated time a pure
/// function of the workload, which the traced-vs-untraced and
/// simulated-vs-threaded equivalence checks require.
fn setup(
    kind: FtlKind,
    shards: usize,
    device: ssd_sim::SsdConfig,
    experiment: ExperimentScale,
) -> (
    harness::ShardedFtl<Box<dyn ftl_base::Ftl>>,
    workloads::FioWorkload,
) {
    warmed_sharded_fio_setup_with(
        kind,
        FioPattern::RandRead,
        STREAMS,
        shards,
        device,
        experiment,
        LearnedFtlConfig::default().with_charge_training_time(false),
    )
}

fn backend_label(workers: Option<usize>) -> &'static str {
    match workers {
        None => "simulated",
        Some(_) => "threaded",
    }
}

/// Simulated-time equality between two runs of the same configuration (the
/// wall clock is the only thing allowed to differ).
fn same_results(a: &ShardedRunResult, b: &ShardedRunResult) -> bool {
    let (a, b) = (&a.result, &b.result);
    a.requests == b.requests
        && a.elapsed == b.elapsed
        && a.latencies.mean() == b.latencies.mean()
        && a.latencies.max() == b.latencies.max()
        && a.clone().p99() == b.clone().p99()
        && a.device == b.device
}

/// One row of the artifact's `runs` array.
struct BenchRun {
    ftl: String,
    backend: &'static str,
    shards: usize,
    requests: u64,
    sim_elapsed_ns: u64,
    wall_s: f64,
    requests_per_sec: f64,
    traced_wall_s: f64,
    trace_events: u64,
    events_per_sec: f64,
    traced_matches_untraced: bool,
    profile_counts_trace: bool,
    rates_finite: bool,
}

impl BenchRun {
    fn checks_pass(&self) -> bool {
        self.traced_matches_untraced && self.profile_counts_trace && self.rates_finite
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"ftl\":\"{}\",\"backend\":\"{}\",\"shards\":{},\"requests\":{},\
             \"sim_elapsed_ns\":{},\"wall_s\":{:.6},\"requests_per_sec\":{:.3},\
             \"traced_wall_s\":{:.6},\"trace_events\":{},\"events_per_sec\":{:.3},\
             \"checks\":{{\"traced_matches_untraced\":{},\
             \"profile_counts_trace\":{},\"rates_finite\":{}}}}}",
            self.ftl,
            self.backend,
            self.shards,
            self.requests,
            self.sim_elapsed_ns,
            self.wall_s,
            self.requests_per_sec,
            self.traced_wall_s,
            self.trace_events,
            self.events_per_sec,
            self.traced_matches_untraced,
            self.profile_counts_trace,
            self.rates_finite,
        )
    }
}

fn artifact_json(
    scale: Scale,
    cores: usize,
    runs: &[BenchRun],
    backends_equivalent: bool,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{}\",\"bench\":\"fig27_throughput\",\"scale\":\"{}\",\
         \"host_cores\":{cores},\"alloc_profile\":{{\"enabled\":{},\"phases\":[",
        metrics::bench_artifact::BENCH_SCHEMA,
        format!("{scale:?}").to_lowercase(),
        alloc_profile::enabled(),
    ));
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let stats = alloc_profile::phase_stats(*phase);
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"phase\":\"{}\",\"allocations\":{},\"bytes\":{}}}",
            phase.label(),
            stats.allocations,
            stats.bytes
        ));
    }
    out.push_str("]},\"runs\":[");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&run.to_json());
    }
    out.push_str(&format!(
        "],\"checks\":{{\"all_backends_equivalent\":{},\"all_runs_checked\":{}}}}}\n",
        backends_equivalent,
        runs.iter().all(BenchRun::checks_pass),
    ));
    out
}

fn main() {
    alloc_profile::set_phase(Phase::Setup);
    let args = BenchArgs::from_env();
    let scale = args.scale();
    let device = shard_scaling_device(scale);
    let experiment = throughput_scale(scale);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    print_header(
        "Fig. 27 (extension) — simulator throughput (BENCH artifact)",
        "requests/s and trace events/s of wall clock per FTL x shards x backend; \
         the traced run must reproduce the untraced run exactly and the threaded \
         backend must reproduce the simulated one",
        scale,
    );
    println!(
        "throughput device: {} | host cores: {cores} | streams={STREAMS} depth={DEPTH} \
         requests/stream={}",
        device.geometry, experiment.ops_per_stream
    );
    println!();

    let mut runs: Vec<BenchRun> = Vec::new();
    let mut backends_equivalent = true;
    let mut analysis_source: Option<ShardedRunResult> = None;
    let mut table = Table::new(vec![
        "FTL",
        "shards",
        "backend",
        "wall (s)",
        "req/s",
        "traced wall (s)",
        "events/s",
        "checks",
    ]);

    for &kind in &KINDS {
        for &shards in &SHARD_COUNTS {
            // Worker threads match the shard count: one worker per shard is
            // the backend's intended operating point, and shards=1 exposes
            // the pure channel/dispatch overhead.
            let mut reference: Option<ShardedRunResult> = None;
            for &workers in &[None, Some(shards)] {
                // Untraced: best-of-reps wall clock for the request rate.
                let mut best: Option<ShardedRunResult> = None;
                for _ in 0..TIMING_REPS {
                    alloc_profile::set_phase(Phase::Warmup);
                    let (mut ftl, mut wl) = setup(kind, shards, device, experiment);
                    alloc_profile::set_phase(Phase::Run);
                    let run = match workers {
                        None => Runner::new().run_sharded_qd(&mut ftl, &mut wl, DEPTH),
                        Some(n) => Runner::new().run_threaded_qd(&mut ftl, &mut wl, DEPTH, n),
                    };
                    alloc_profile::set_phase(Phase::Setup);
                    best = match best {
                        Some(b) if b.result.profile.wall <= run.result.profile.wall => Some(b),
                        _ => Some(run),
                    };
                }
                let untraced = best.expect("TIMING_REPS >= 1");
                match &reference {
                    None => reference = Some(untraced.clone()),
                    Some(r) => {
                        if !same_results(r, &untraced) {
                            eprintln!(
                                "EQUIVALENCE VIOLATION: {kind} shards={shards} threaded \
                                 diverged from simulated"
                            );
                            backends_equivalent = false;
                        }
                    }
                }

                // Traced: one run for the event rate and the
                // tracing-does-not-perturb check.
                alloc_profile::set_phase(Phase::Warmup);
                let (mut ftl, mut wl) = setup(kind, shards, device, experiment);
                ftl.set_tracing(true);
                alloc_profile::set_phase(Phase::Run);
                let traced = match workers {
                    None => Runner::new().run_sharded_qd(&mut ftl, &mut wl, DEPTH),
                    Some(n) => Runner::new().run_threaded_qd(&mut ftl, &mut wl, DEPTH, n),
                };
                alloc_profile::set_phase(Phase::Setup);

                let traced_matches_untraced = same_results(&untraced, &traced);
                if !traced_matches_untraced {
                    eprintln!(
                        "TRACING PERTURBED THE RUN: {kind} shards={shards} \
                         backend={}",
                        backend_label(workers)
                    );
                }
                let profile_counts_trace = traced.result.profile.trace_events
                    == traced.result.trace.len() as u64
                    && traced.result.profile.requests == traced.result.requests;
                let untraced_profile = untraced.result.profile;
                let traced_profile = traced.result.profile;
                let rates = [
                    untraced_profile.requests_per_sec(),
                    traced_profile.events_per_sec(),
                ];
                let rates_finite = rates.iter().all(|r| r.is_finite() && *r >= 0.0)
                    && (untraced_profile.wall.as_secs_f64() <= 0.0 || rates[0] > 0.0);

                let run = BenchRun {
                    ftl: kind.label().to_string(),
                    backend: backend_label(workers),
                    shards,
                    requests: untraced.result.requests,
                    sim_elapsed_ns: untraced.result.elapsed.as_nanos(),
                    wall_s: untraced_profile.wall.as_secs_f64(),
                    requests_per_sec: untraced_profile.requests_per_sec(),
                    traced_wall_s: traced_profile.wall.as_secs_f64(),
                    trace_events: traced_profile.trace_events,
                    events_per_sec: traced_profile.events_per_sec(),
                    traced_matches_untraced,
                    profile_counts_trace,
                    rates_finite,
                };
                table.add_row(vec![
                    run.ftl.clone(),
                    shards.to_string(),
                    run.backend.to_string(),
                    format!("{:.3}", run.wall_s),
                    format!("{:.0}", run.requests_per_sec),
                    format!("{:.3}", run.traced_wall_s),
                    format!("{:.0}", run.events_per_sec),
                    if run.checks_pass() { "ok" } else { "FAIL" }.to_string(),
                ]);
                runs.push(run);

                // The simulated LearnedFTL sweep point at max shards is the
                // designated `--analyze-out` run (the richest trace).
                if workers.is_none() && kind == FtlKind::LearnedFtl {
                    analysis_source = Some(traced);
                }
            }
        }
    }

    alloc_profile::set_phase(Phase::Report);
    let all_checked = runs.iter().all(BenchRun::checks_pass);
    print_table_with_verdict(
        &table,
        &format!(
            "traced==untraced and threaded==simulated on every configuration: {}",
            if all_checked && backends_equivalent {
                "yes"
            } else {
                "NO"
            }
        ),
    );

    if let Some(traced) = &analysis_source {
        args.export_observability("fig27_throughput", &traced.result)
            .expect("writing observability output failed");
    }
    bench::print_alloc_profile();

    let path = args
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_fig27.json".to_string());
    let json = artifact_json(scale, cores, &runs, backends_equivalent);
    std::fs::write(&path, &json).expect("writing BENCH artifact failed");
    match metrics::validate_bench_artifact(&json) {
        Ok(summary) => println!(
            "bench: wrote {} runs ({} requests, {} checks passed) to {path}",
            summary.runs, summary.total_requests, summary.checks_passed
        ),
        Err(err) => {
            eprintln!("FAIL: BENCH artifact did not validate: {err}");
            std::process::exit(1);
        }
    }
    if let Some(floors_path) = &args.bench_floors {
        let floors = std::fs::read_to_string(floors_path).unwrap_or_else(|err| {
            eprintln!("FAIL: cannot read floors file {floors_path}: {err}");
            std::process::exit(1);
        });
        match metrics::check_bench_floors(&json, &floors) {
            Ok(summary) => println!(
                "bench: all {} floors hold (tightest margin {:.2}x) against {floors_path}",
                summary.floors, summary.tightest_margin
            ),
            Err(err) => {
                eprintln!("FAIL: BENCH floor check against {floors_path}: {err}");
                std::process::exit(1);
            }
        }
    }
    if !(all_checked && backends_equivalent) {
        eprintln!("FAIL: self-consistency checks failed");
        std::process::exit(1);
    }
}
