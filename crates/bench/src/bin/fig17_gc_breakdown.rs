//! Figure 17: how much of LearnedFTL's GC time goes to sorting and training
//! as the FIO random-write run gets longer.
//!
//! Paper's finding: sorting + training account for at most ~3.2 % of the GC
//! execution time; the rest is the flash reads/writes/erases GC performs
//! anyway.

use bench::{print_header, print_table_with_verdict, BenchArgs, Scale};
use ftl_base::Ftl;
use harness::Runner;
use learnedftl::{LearnedFtl, LearnedFtlConfig};
use metrics::Table;
use workloads::{warmup, FioPattern, FioWorkload};

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 17 — sorting + training share of GC execution time (LearnedFTL)",
        "sorting and training account for at most ~3% of GC time",
        scale,
    );
    let device = scale.device();
    let experiment = scale.experiment();
    let threads = scale.fio_threads();
    let multipliers: &[u64] = match scale {
        Scale::Quick => &[1, 2],
        _ => &[1, 2, 4, 8],
    };

    let mut table = Table::new(vec![
        "write volume (x base)",
        "GC count",
        "GC flash time (ms)",
        "sort wall (ms)",
        "train wall (ms)",
        "compute share",
    ]);
    let mut worst_share: f64 = 0.0;
    for &mult in multipliers {
        let mut ftl = LearnedFtl::new(device, LearnedFtlConfig::default());
        warmup::sequential_fill(
            &mut ftl,
            experiment.warmup_io_pages,
            1,
            ssd_sim::SimTime::ZERO,
        );
        let mut wl = FioWorkload::new(
            FioPattern::RandWrite,
            ftl.logical_pages(),
            threads,
            1,
            experiment.ops_per_stream * mult,
            13,
        );
        let result = Runner::new().run(&mut ftl, &mut wl);
        let gc_ms = result.stats.gc_flash_time.as_millis_f64();
        let sort_ms = result.stats.sort_wall_time.as_secs_f64() * 1e3;
        let train_ms = result.stats.train_wall_time.as_secs_f64() * 1e3;
        let share = if gc_ms > 0.0 {
            (sort_ms + train_ms) / gc_ms
        } else {
            0.0
        };
        worst_share = worst_share.max(share);
        table.add_row(vec![
            mult.to_string(),
            result.stats.gc_count.to_string(),
            format!("{gc_ms:.2}"),
            format!("{sort_ms:.3}"),
            format!("{train_ms:.3}"),
            format!("{:.2}%", share * 100.0),
        ]);
    }
    let verdict = format!(
        "sorting + training never exceed {:.1}% of GC time (paper: at most ~3.2%)",
        worst_share * 100.0
    );
    print_table_with_verdict(&table, &verdict);

    bench::export_default_observability(&args, "fig17_gc_breakdown");
}
