//! Figure 3: the CMT hit ratio of TPFTL under random reads as the CMT grows
//! from 0.1 % to 50 % of all page mappings.
//!
//! Paper's finding: even a CMT holding 50 % of all mappings only reaches a
//! ~26 % hit ratio under random reads — growing the cache cannot fix the
//! double-read problem.

use baselines::{BaselineConfig, Tpftl};
use bench::{percent, print_header, print_table_with_verdict, BenchArgs};
use harness::Runner;
use metrics::Table;
use workloads::{warmup, FioPattern, FioWorkload};

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 3 — TPFTL CMT hit ratio vs CMT space under random reads",
        "hit ratio grows only to ~26% even with a CMT holding 50% of all mappings",
        scale,
    );
    let device = scale.device();
    let experiment = scale.experiment();
    let ratios = [0.001, 0.03, 0.10, 0.30, 0.50];
    let paper = [0.0001, 0.019, 0.0524, 0.15, 0.259];

    let mut table = Table::new(vec![
        "CMT space (% of mappings)",
        "RandRead hit ratio",
        "SeqRead hit ratio",
        "paper (rand)",
    ]);
    let mut measured = Vec::new();
    for (i, &ratio) in ratios.iter().enumerate() {
        let run_pattern = |pattern: FioPattern| {
            let mut ftl = Tpftl::new(device, BaselineConfig::default().with_cmt_ratio(ratio));
            warmup::paper_warmup(
                &mut ftl,
                experiment.warmup_io_pages,
                experiment.warmup_overwrites,
                7,
            );
            let mut wl = FioWorkload::new(
                pattern,
                ftl_base::Ftl::logical_pages(&ftl),
                scale.fio_threads(),
                1,
                experiment.ops_per_stream,
                11,
            );
            Runner::new().run(&mut ftl, &mut wl)
        };
        let rand = run_pattern(FioPattern::RandRead);
        let seq = run_pattern(FioPattern::SeqRead);
        measured.push(rand.cmt_hit_ratio());
        table.add_row(vec![
            format!("{:.1}", ratio * 100.0),
            percent(rand.cmt_hit_ratio()),
            percent(seq.cmt_hit_ratio()),
            percent(paper[i]),
        ]);
    }
    let monotone = measured.windows(2).all(|w| w[1] >= w[0] - 0.02);
    let capped = measured.last().copied().unwrap_or(0.0) < 0.8;
    let verdict = format!(
        "hit ratio grows with CMT size ({}) but stays far from 100% even at 50% space ({}) — \
         matching the paper's point that cache growth cannot solve random reads",
        if monotone { "monotone" } else { "NOT monotone" },
        if capped { "capped" } else { "NOT capped" },
    );
    print_table_with_verdict(&table, &verdict);

    bench::export_default_observability(&args, "fig03_cmt_sweep");
}
