//! Figure 7: TPFTL vs LeaFTL under the Filebench workloads, plus the cache /
//! model hit ratios under webserver.
//!
//! Paper's finding: on locality-heavy workloads LeaFTL is no better (and often
//! worse) than TPFTL, because even a high model-cache hit ratio still yields
//! mispredictions and therefore double reads.

use bench::{percent, print_header, print_table_with_verdict, BenchArgs};
use harness::experiments::filebench_run;
use harness::FtlKind;
use metrics::Table;
use workloads::FilebenchPreset;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 7 — TPFTL vs LeaFTL under Filebench",
        "LeaFTL is equal or worse than TPFTL on locality-heavy workloads",
        scale,
    );
    let device = scale.device();
    let experiment = scale.experiment();

    let mut table = Table::new(vec![
        "workload",
        "TPFTL MiB/s",
        "LeaFTL MiB/s",
        "LeaFTL normalized",
    ]);
    let mut leaftl_never_better = true;
    let mut webserver_hits = (0.0, 0.0);
    for preset in FilebenchPreset::all() {
        let tpftl = filebench_run(FtlKind::Tpftl, preset, device, experiment);
        let leaftl = filebench_run(FtlKind::LeaFtl, preset, device, experiment);
        let normalized = leaftl.normalized_throughput(&tpftl);
        if normalized > 1.10 {
            leaftl_never_better = false;
        }
        if preset == FilebenchPreset::Webserver {
            webserver_hits = (tpftl.cmt_hit_ratio(), leaftl.stats.single_read_ratio());
        }
        table.add_row(vec![
            preset.label().to_string(),
            format!("{:.1}", tpftl.mib_per_sec()),
            format!("{:.1}", leaftl.mib_per_sec()),
            format!("{normalized:.2}"),
        ]);
    }
    let verdict = format!(
        "LeaFTL {} beats TPFTL by more than 10% on any Filebench workload (paper: never); \
         under webserver TPFTL serves {} of reads from its CMT while LeaFTL serves only {} \
         with a single flash read",
        if leaftl_never_better { "never" } else { "DOES" },
        percent(webserver_hits.0),
        percent(webserver_hits.1),
    );
    print_table_with_verdict(&table, &verdict);

    bench::export_default_observability(&args, "fig07_leaftl_filebench");
}
