//! Wall-clock scaling of the thread-parallel execution backend
//! (`Runner::run_threaded_qd` / `run_threaded_open_loop`).
//!
//! The simulated backend advances all four shards' translation engines from
//! one host thread, so host wall-clock grows with shard count even though
//! shards share no state. The threaded backend gives each shard's FTL to a
//! dedicated worker thread while keeping the *simulated-time* results
//! bit-for-bit identical (the workspace `threaded_equivalence` suite pins
//! the whole matrix; this binary re-checks the sweep it times). Two shape
//! criteria anchor the figure:
//!
//! * **equivalence** — every threaded run reports exactly the simulated
//!   run's requests, elapsed simulated time, mean/max latency and P99
//!   (always enforced),
//! * **scaling** — with ≥ 2 host cores, `workers=4` must finish the QD16
//!   closed-loop sweep and the saturating open-loop sweep in less host
//!   wall-clock than `workers=1`. Enforced for LearnedFTL *and* DFTL: the
//!   batched SQ/CQ rings ship whole submission windows per channel
//!   round-trip, so even DFTL's sub-microsecond translation work no longer
//!   drowns in per-request channel overhead. (Skipped with a note on
//!   single-core hosts, where no backend can overlap work.)
//! * **coalescing** — a traced DFTL run's `RingBatch` counters must show a
//!   mean submission-batch size above 1 at QD16. Batch boundaries are a
//!   pure function of dispatch history, so unlike the wall-clock criteria
//!   this is deterministic and enforced on every host.
//!
//! Run with `--quick` to force the smoke-test scale regardless of
//! `LEARNEDFTL_SCALE` (what CI does).

use harness::wallclock::WallTimer;

use bench::{print_header, print_table_with_verdict, shard_scaling_device, BenchArgs, Scale};
use harness::experiments::{
    fio_qd_threaded_traced_run, warmed_sharded_fio_setup_with, ExperimentScale,
};
use harness::{FtlKind, Runner, ShardedRunResult};
use learnedftl::LearnedFtlConfig;
use metrics::Table;
use ssd_sim::Duration;
use workloads::FioPattern;

const SHARDS: usize = 4;
const DEPTH: usize = 16;
const STREAMS: usize = 16;
/// Worker counts swept; `None` is the simulated single-thread reference.
const WORKERS: [Option<usize>; 4] = [None, Some(1), Some(2), Some(4)];

/// The measured phase needs enough requests that host wall-clock dominates
/// thread start-up and channel warm-up; the quick preset's per-stream count
/// is sized for simulated-time smoke checks, so raise its floor here.
fn wallclock_scale(scale: Scale) -> ExperimentScale {
    let mut experiment = scale.experiment();
    experiment.ops_per_stream = experiment.ops_per_stream.max(2_000);
    experiment
}

fn backend_label(workers: Option<usize>) -> String {
    match workers {
        None => "simulated".to_string(),
        Some(n) => format!("threaded x{n}"),
    }
}

/// One identically prepared frontend + measured workload. LearnedFTL runs
/// with `charge_training_time(false)`: billing the trainer's host wall
/// clock into simulated time would let separately prepared instances
/// diverge, which a backend-equivalence check must never be exposed to.
fn setup(
    kind: FtlKind,
    device: ssd_sim::SsdConfig,
    experiment: ExperimentScale,
) -> (
    harness::ShardedFtl<Box<dyn ftl_base::Ftl>>,
    workloads::FioWorkload,
) {
    warmed_sharded_fio_setup_with(
        kind,
        FioPattern::RandRead,
        STREAMS,
        SHARDS,
        device,
        experiment,
        LearnedFtlConfig::default().with_charge_training_time(false),
    )
}

/// Timed runs on shared CI hosts are noisy; measure each backend twice on
/// freshly prepared (identical) frontends and keep the best wall-clock.
/// Results are deterministic, so either run's measurements can be reported.
const TIMING_REPS: usize = 2;

/// Asserts a threaded run reproduced the simulated run's simulated-time
/// measurements exactly.
fn assert_equivalent(kind: FtlKind, reference: &ShardedRunResult, run: &ShardedRunResult) -> bool {
    let (a, b) = (&reference.result, &run.result);
    let same = a.requests == b.requests
        && a.elapsed == b.elapsed
        && a.latencies.mean() == b.latencies.mean()
        && a.latencies.max() == b.latencies.max()
        && a.clone().p99() == b.clone().p99()
        && a.device == b.device;
    if !same {
        eprintln!("EQUIVALENCE VIOLATION for {kind}: threaded run diverged from simulated");
    }
    same
}

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    let device = shard_scaling_device(scale);
    let experiment = wallclock_scale(scale);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    print_header(
        "Fig. 25 (extension) — wall-clock scaling of the threaded backend",
        "worker threads cut host wall-clock without changing a single simulated \
         timestamp: threaded x4 beats threaded x1 at QD16 while every backend \
         reports identical results",
        scale,
    );
    println!(
        "wall-clock device: {} | host cores: {cores}",
        device.geometry
    );
    println!(
        "shards={SHARDS} depth={DEPTH} streams={STREAMS} requests/stream={}",
        experiment.ops_per_stream
    );
    println!();

    let kinds = [FtlKind::Dftl, FtlKind::LearnedFtl];
    let mut equivalent = true;
    let mut closed_scaling_holds = true;
    let mut closed_gains = Vec::new();

    // ---- closed loop, QD16 ------------------------------------------------
    let mut table = Table::new(vec![
        "FTL",
        "backend",
        "wall (ms)",
        "sim elapsed (ms)",
        "IOPS (sim)",
        "speedup vs x1",
    ]);
    for &kind in &kinds {
        let mut reference: Option<ShardedRunResult> = None;
        let mut wall_x1 = f64::NAN;
        for &workers in &WORKERS {
            let mut wall = f64::INFINITY;
            let mut measured = None;
            for _ in 0..TIMING_REPS {
                let (mut ftl, mut wl) = setup(kind, device, experiment);
                let clock = WallTimer::start();
                let run = match workers {
                    None => Runner::new().run_sharded_qd(&mut ftl, &mut wl, DEPTH),
                    Some(n) => Runner::new().run_threaded_qd(&mut ftl, &mut wl, DEPTH, n),
                };
                wall = wall.min(clock.elapsed().as_secs_f64() * 1_000.0);
                measured = Some(run);
            }
            let run = measured.expect("TIMING_REPS >= 1");
            match &reference {
                None => reference = Some(run.clone()),
                Some(r) => equivalent &= assert_equivalent(kind, r, &run),
            }
            if workers == Some(1) {
                wall_x1 = wall;
            }
            let speedup = match workers {
                Some(n) if n > 1 => format!("{:.2}x", wall_x1 / wall),
                _ => "-".to_string(),
            };
            if workers == Some(4) {
                closed_gains.push((kind, wall_x1 / wall));
                if wall >= wall_x1 {
                    closed_scaling_holds = false;
                }
            }
            table.add_row(vec![
                kind.label().to_string(),
                backend_label(workers),
                format!("{wall:.1}"),
                format!("{:.2}", run.result.elapsed.as_millis_f64()),
                format!("{:.0}", run.result.iops()),
                speedup,
            ]);
        }
    }
    println!("closed loop, QD{DEPTH} random read");
    let gains: Vec<String> = closed_gains
        .iter()
        .map(|(k, g)| format!("{k} {g:.2}x"))
        .collect();
    print_table_with_verdict(
        &table,
        &format!(
            "threaded x4 vs x1 wall-clock: {} (both FTLs must be > 1.0 on multi-core hosts): {}",
            gains.join(", "),
            if cores < 2 {
                "SKIPPED — single-core host"
            } else if closed_scaling_holds {
                "yes"
            } else {
                "NO — worker threads did not pay off"
            }
        ),
    );

    // ---- open loop (no host feedback: the backend's best case) ------------
    // Saturating offered load so every worker's backlog stays deep.
    let open_gap = Duration::from_micros(10);
    let mut open_table = Table::new(vec!["FTL", "backend", "wall (ms)", "mean (us)", "P99 (us)"]);
    let mut open_scaling_holds = true;
    for &kind in &[FtlKind::LearnedFtl] {
        let mut wall_x1 = f64::NAN;
        let mut reference: Option<harness::RunResult> = None;
        for &workers in &[None, Some(1), Some(4)] {
            let mut wall = f64::INFINITY;
            let mut measured = None;
            for _ in 0..TIMING_REPS {
                let (mut ftl, mut wl) = setup(kind, device, experiment);
                let clock = WallTimer::start();
                let run = match workers {
                    None => Runner::new().run_open_loop(&mut ftl, &mut wl, open_gap, 0xA11CE),
                    Some(n) => Runner::new()
                        .run_threaded_open_loop(&mut ftl, &mut wl, open_gap, 0xA11CE, n),
                };
                wall = wall.min(clock.elapsed().as_secs_f64() * 1_000.0);
                measured = Some(run);
            }
            let mut run = measured.expect("TIMING_REPS >= 1");
            match &reference {
                None => reference = Some(run.clone()),
                Some(r) => {
                    let same = r.requests == run.requests
                        && r.elapsed == run.elapsed
                        && r.latencies.mean() == run.latencies.mean()
                        && r.latencies.max() == run.latencies.max();
                    if !same {
                        eprintln!(
                            "EQUIVALENCE VIOLATION for {kind} (open loop): threaded diverged"
                        );
                    }
                    equivalent &= same;
                }
            }
            if workers == Some(1) {
                wall_x1 = wall;
            }
            if workers == Some(4) && wall >= wall_x1 {
                open_scaling_holds = false;
            }
            open_table.add_row(vec![
                kind.label().to_string(),
                backend_label(workers),
                format!("{wall:.1}"),
                format!("{:.1}", run.latencies.mean().as_micros_f64()),
                format!("{:.1}", run.p99().as_micros_f64()),
            ]);
        }
    }
    println!("open loop, saturating offered load (Poisson, 10 us mean gap)");
    print_table_with_verdict(
        &open_table,
        &format!(
            "threaded x4 vs x1 wall-clock on the feedback-free arrival stream: {}",
            if cores < 2 {
                "SKIPPED — single-core host"
            } else if open_scaling_holds {
                "yes"
            } else {
                "NO — worker threads did not pay off"
            }
        ),
    );

    // ---- ring coalescing (traced; deterministic on every host) ------------
    // The refactored backend stages dispatches on per-shard submission rings
    // and ships each eligible window as one channel round-trip; a traced
    // run's RingBatch counters record exactly how many requests every window
    // coalesced. DFTL is the FTL the batching exists for — its translation
    // work is so cheap that per-request channel traffic used to dominate.
    let traced = fio_qd_threaded_traced_run(
        FtlKind::Dftl,
        FioPattern::RandRead,
        STREAMS,
        DEPTH,
        SHARDS,
        4,
        device,
        experiment,
    );
    let analysis = metrics::analyze(&traced.result.trace);
    let ring = analysis.ring_totals();
    let mut ring_table = Table::new(vec!["shard", "batches", "entries", "mean", "max"]);
    for r in &analysis.rings {
        ring_table.add_row(vec![
            r.shard.to_string(),
            r.batches.to_string(),
            r.entries.to_string(),
            format!("{:.2}", r.mean_entries()),
            r.max_entries.to_string(),
        ]);
    }
    ring_table.add_row(vec![
        "all".to_string(),
        ring.batches.to_string(),
        ring.entries.to_string(),
        format!("{:.2}", ring.mean_entries()),
        ring.max_entries.to_string(),
    ]);
    println!("submission-ring coalescing, DFTL threaded x4, QD{DEPTH} random read (traced)");
    let batching_holds = ring.batches > 0 && ring.mean_entries() > 1.0;
    print_table_with_verdict(
        &ring_table,
        &format!(
            "mean submission-batch size at QD{DEPTH}: {:.2} (must exceed 1 — \
             the rings must coalesce): {}",
            ring.mean_entries(),
            if batching_holds {
                "yes"
            } else {
                "NO — every window shipped a single request"
            }
        ),
    );

    if !equivalent {
        eprintln!("FAIL: threaded backend diverged from the simulated backend");
        std::process::exit(1);
    }
    bench::export_default_observability(&args, "fig25_wallclock_scaling");

    if cores >= 2 && !(closed_scaling_holds && open_scaling_holds) {
        eprintln!("FAIL: threaded x4 did not beat threaded x1 in wall-clock");
        std::process::exit(1);
    }
    if !batching_holds {
        eprintln!("FAIL: submission rings did not coalesce requests at QD{DEPTH}");
        std::process::exit(1);
    }
}
