//! Figure 14: FIO performance under 64 threads for all five FTL designs —
//! (a) throughput per access pattern, (b) CMT/model hit ratios for reads,
//! (c) write amplification for writes.
//!
//! Paper's findings: LearnedFTL beats DFTL/TPFTL/LeaFTL by 1.4–1.6× on random
//! reads (reaching ~89 % of the ideal FTL), is slightly ahead on sequential
//! reads, and its group-based allocation keeps write amplification at or below
//! the baselines'.

use bench::{percent, print_header, print_table_with_verdict, BenchArgs};
use harness::experiments::{fio_read_sharded_run, fio_write_sharded_run};
use harness::{FtlKind, RunResult};
use metrics::Table;
use workloads::FioPattern;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 14 — FIO throughput, hit ratios and write amplification (all FTLs)",
        "LearnedFTL wins random reads by 1.4-1.6x over the baselines and approaches the ideal FTL",
        scale,
    );
    // Sharded runs use the shard-ready geometry (8 channels, shard-sized
    // block rows) so every design builds on every channel group.
    let device = if args.shards > 1 {
        let device = bench::shard_scaling_device(scale);
        println!(
            "running sharded: {} per-channel-group FTL shards per design \
             (closed-loop streams share the shards' serial translation engines) on {}",
            args.shards, device.geometry
        );
        device
    } else {
        scale.device()
    };
    let experiment = scale.experiment();
    let threads = scale.fio_threads();
    let kinds = FtlKind::all();

    // ---- Fig. 14(a): throughput per pattern --------------------------------
    let mut results: Vec<(FioPattern, Vec<RunResult>)> = Vec::new();
    for pattern in [
        FioPattern::RandRead,
        FioPattern::SeqRead,
        FioPattern::RandWrite,
        FioPattern::SeqWrite,
    ] {
        let mut per_kind = Vec::new();
        for kind in kinds {
            let result = if pattern.is_read() {
                fio_read_sharded_run(kind, pattern, threads, args.shards, device, experiment)
            } else {
                fio_write_sharded_run(kind, pattern, threads, args.shards, device, experiment)
            };
            per_kind.push(result);
        }
        results.push((pattern, per_kind));
    }

    let mut throughput = Table::new(vec![
        "pattern",
        "DFTL",
        "TPFTL",
        "LeaFTL",
        "LearnedFTL",
        "ideal",
        "LearnedFTL/TPFTL",
        "LearnedFTL/ideal",
    ]);
    let mut randread_gain = 0.0;
    let mut randread_vs_ideal = 0.0;
    for (pattern, per_kind) in &results {
        let mibs: Vec<f64> = per_kind.iter().map(RunResult::mib_per_sec).collect();
        let learned = mibs[3];
        let tpftl = mibs[1];
        let ideal = mibs[4];
        let vs_tpftl = if tpftl > 0.0 { learned / tpftl } else { 0.0 };
        let vs_ideal = if ideal > 0.0 { learned / ideal } else { 0.0 };
        if *pattern == FioPattern::RandRead {
            randread_gain = vs_tpftl;
            randread_vs_ideal = vs_ideal;
        }
        throughput.add_row(vec![
            pattern.label().to_string(),
            format!("{:.1}", mibs[0]),
            format!("{:.1}", mibs[1]),
            format!("{:.1}", mibs[2]),
            format!("{:.1}", mibs[3]),
            format!("{:.1}", mibs[4]),
            format!("{vs_tpftl:.2}"),
            format!("{vs_ideal:.2}"),
        ]);
    }
    println!("Fig. 14(a) — throughput (MiB/s)");
    print_table_with_verdict(
        &throughput,
        &format!(
            "LearnedFTL/TPFTL on random reads = {randread_gain:.2}x (paper: 1.4x) and reaches \
             {:.0}% of the ideal FTL (paper: 89%)",
            randread_vs_ideal * 100.0
        ),
    );

    // ---- Fig. 14(b): CMT / model hit ratios for the read patterns ----------
    let mut hits = Table::new(vec![
        "pattern",
        "FTL",
        "CMT hit",
        "model hit",
        "single reads",
    ]);
    for (pattern, per_kind) in &results {
        if !pattern.is_read() {
            continue;
        }
        for result in per_kind {
            hits.add_row(vec![
                pattern.label().to_string(),
                result.ftl_name.clone(),
                percent(result.cmt_hit_ratio()),
                percent(result.model_hit_ratio()),
                percent(result.stats.single_read_ratio()),
            ]);
        }
    }
    let learned_rand = &results[0].1[3];
    println!("Fig. 14(b) — hit ratios");
    print_table_with_verdict(
        &hits,
        &format!(
            "under random reads DFTL/TPFTL CMT hit ratios are near zero while LearnedFTL's \
             models alone serve {} of reads (paper: 55.5%)",
            percent(learned_rand.model_hit_ratio())
        ),
    );

    // ---- Fig. 14(c): write amplification ------------------------------------
    let mut wa = Table::new(vec![
        "pattern",
        "DFTL",
        "TPFTL",
        "LeaFTL",
        "LearnedFTL",
        "ideal",
    ]);
    let mut learned_wa_ok = true;
    for (pattern, per_kind) in &results {
        if pattern.is_read() {
            continue;
        }
        let was: Vec<f64> = per_kind
            .iter()
            .map(RunResult::write_amplification)
            .collect();
        if *pattern == FioPattern::RandWrite && was[3] > was[1] * 1.3 {
            learned_wa_ok = false;
        }
        wa.add_row(vec![
            pattern.label().to_string(),
            format!("{:.2}", was[0]),
            format!("{:.2}", was[1]),
            format!("{:.2}", was[2]),
            format!("{:.2}", was[3]),
            format!("{:.2}", was[4]),
        ]);
    }
    println!("Fig. 14(c) — write amplification");
    print_table_with_verdict(
        &wa,
        &format!(
            "LearnedFTL's group-based allocation {} write amplification comparable to the \
             baselines under random writes (paper: slightly lower than DFTL/LeaFTL)",
            if learned_wa_ok {
                "keeps"
            } else {
                "does NOT keep"
            }
        ),
    );

    bench::export_default_observability(&args, "fig14_fio");
}
