//! Figure 19: RocksDB (db_bench) readrandom / readseq performance on top of
//! each FTL, plus the CMT/model hit ratios.
//!
//! Paper's finding: LearnedFTL outperforms the other FTLs by 1.3–1.4× on
//! readrandom (and is at least as good on readseq) because its learned models
//! keep serving single flash reads where the baselines double-read.

use bench::{percent, print_header, print_table_with_verdict, BenchArgs};
use harness::experiments::rocksdb_run;
use harness::FtlKind;
use metrics::Table;
use workloads::RocksDbPhase;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 19 — RocksDB readrandom / readseq on each FTL",
        "LearnedFTL beats the baselines by 1.3-1.4x on readrandom",
        scale,
    );
    let device = scale.device();
    let experiment = scale.experiment();

    for phase in [RocksDbPhase::ReadRandom, RocksDbPhase::ReadSeq] {
        let mut table = Table::new(vec![
            "FTL",
            "MiB/s",
            "normalized to TPFTL",
            "CMT hit",
            "model hit",
        ]);
        let mut tpftl_mibs = 0.0;
        let mut learned_mibs = 0.0;
        let mut results = Vec::new();
        for kind in FtlKind::all() {
            let result = rocksdb_run(kind, phase, device, experiment);
            if kind == FtlKind::Tpftl {
                tpftl_mibs = result.mib_per_sec();
            }
            if kind == FtlKind::LearnedFtl {
                learned_mibs = result.mib_per_sec();
            }
            results.push((kind, result));
        }
        for (kind, result) in &results {
            let normalized = if tpftl_mibs > 0.0 {
                result.mib_per_sec() / tpftl_mibs
            } else {
                0.0
            };
            table.add_row(vec![
                kind.label().to_string(),
                format!("{:.1}", result.mib_per_sec()),
                format!("{normalized:.2}"),
                percent(result.cmt_hit_ratio()),
                percent(result.model_hit_ratio()),
            ]);
        }
        let gain = if tpftl_mibs > 0.0 {
            learned_mibs / tpftl_mibs
        } else {
            0.0
        };
        println!("phase: {}", phase.label());
        print_table_with_verdict(
            &table,
            &format!(
                "LearnedFTL/TPFTL = {gain:.2}x (paper: 1.3-1.4x on readrandom, ≥1.02x on readseq)"
            ),
        );
    }

    bench::export_default_observability(&args, "fig19_rocksdb");
}
