//! Shard-scaling sweep: throughput and tail latency for 1/2/4/8 FTL shards
//! under FIO-style 4 KiB random reads, for DFTL / TPFTL / LeaFTL /
//! LearnedFTL, plus an open-loop latency-vs-offered-load table.
//!
//! This goes beyond the paper: its FEMU platform runs one FTL instance, so
//! the translation path is serial no matter how many chips the queue depth
//! exposes. Sharding the logical space across per-channel-group FTL
//! instances (`ftl-shard`) gives each channel group its own CMT/GTD and its
//! own translation engine, so deep host queues keep several engines busy at
//! once. Two shape checks anchor the sweep:
//!
//! * at QD 16, four shards must deliver strictly more IOPS than one shard
//!   for DFTL and LearnedFTL (the enforced acceptance pair; the other FTLs
//!   are reported),
//! * at QD 1 sharding must not help — a single outstanding request can only
//!   ever use one translation engine, so the shards=1 and shards=4 QD1
//!   columns stay close.
//!
//! The open-loop table replays the same read mix with seeded Poisson
//! arrivals ([`harness::Runner::run_open_loop`]): below saturation the
//! sharded and unsharded frontends agree, and as the offered load climbs the
//! single engine saturates first.
//!
//! Run with `--shards N` to sweep `{1, N}` instead of the default
//! `{1, 2, 4, 8}`.

use bench::{print_header, print_table_with_verdict, shard_scaling_device, BenchArgs};
use harness::experiments::{fio_open_loop_run, fio_qd_sharded_run, fio_qd_sharded_traced_run};
use harness::FtlKind;
use metrics::Table;
use ssd_sim::Duration;
use workloads::FioPattern;

const QDS: [usize; 2] = [1, 16];

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    let device = shard_scaling_device(scale);
    print_header(
        "Fig. 23 (extension) — shard-scaling sweep, FIO randread 4 KiB",
        "per-channel-group FTL shards multiply translation throughput at deep queues: \
         shards=4 beats shards=1 at QD16 while QD1 stays flat",
        scale,
    );
    println!("shard-scaling device: {}", device.geometry);
    let shard_counts: Vec<usize> = if args.shards == 1 {
        vec![1, 2, 4, 8]
    } else {
        vec![1, args.shards]
    };
    println!("shard counts swept: {shard_counts:?}");
    println!();

    let experiment = scale.experiment();
    let threads = scale.fio_threads();
    let kinds = [
        FtlKind::Dftl,
        FtlKind::Tpftl,
        FtlKind::LeaFtl,
        FtlKind::LearnedFtl,
    ];

    // ---- closed-loop QD sweep ---------------------------------------------
    let mut table = Table::new(vec![
        "FTL",
        "shards",
        "QD",
        "IOPS",
        "MiB/s",
        "P99 (us)",
        "P99.9 (us)",
        "lane imbalance",
    ]);
    // iops[kind][shard_index][qd_index]
    let mut iops = vec![vec![[0.0f64; QDS.len()]; shard_counts.len()]; kinds.len()];
    for (ki, &kind) in kinds.iter().enumerate() {
        for (si, &shards) in shard_counts.iter().enumerate() {
            for (qi, &depth) in QDS.iter().enumerate() {
                let mut r = fio_qd_sharded_run(
                    kind,
                    FioPattern::RandRead,
                    threads,
                    depth,
                    shards,
                    device,
                    experiment,
                );
                iops[ki][si][qi] = r.result.iops();
                table.add_row(vec![
                    kind.label().to_string(),
                    shards.to_string(),
                    depth.to_string(),
                    format!("{:.0}", r.result.iops()),
                    format!("{:.1}", r.result.mib_per_sec()),
                    format!("{:.1}", r.result.p99().as_micros_f64()),
                    format!("{:.1}", r.result.p999().as_micros_f64()),
                    format!("{:.2}", r.lane_imbalance()),
                ]);
            }
        }
    }

    // Shards=4 (or the largest swept count) vs shards=1 at QD16.
    let big = shard_counts.len() - 1;
    let gain = |ki: usize| iops[ki][big][1] / iops[ki][0][1].max(f64::MIN_POSITIVE);
    let enforced = [FtlKind::Dftl, FtlKind::LearnedFtl];
    let mut scaling_holds = true;
    for &kind in &enforced {
        let ki = kinds.iter().position(|&k| k == kind).expect("kind swept");
        if iops[ki][big][1] <= iops[ki][0][1] {
            scaling_holds = false;
        }
    }
    let dftl = kinds
        .iter()
        .position(|&k| k == FtlKind::Dftl)
        .expect("DFTL is always swept");
    let learned = kinds
        .iter()
        .position(|&k| k == FtlKind::LearnedFtl)
        .expect("LearnedFTL is always swept");
    println!("closed loop, QD sweep");
    print_table_with_verdict(
        &table,
        &format!(
            "shards={} vs shards=1 at QD16: DFTL {:.2}x, LearnedFTL {:.2}x \
             (must be > 1.0 for both): {}",
            shard_counts[big],
            gain(dftl),
            gain(learned),
            if scaling_holds {
                "yes"
            } else {
                "NO — sharding did not scale"
            }
        ),
    );

    // ---- open-loop latency vs offered load --------------------------------
    let mut open = Table::new(vec![
        "FTL",
        "shards",
        "offered load (KIOPS)",
        "mean (us)",
        "P99 (us)",
    ]);
    let open_shards = [shard_counts[0], shard_counts[big]];
    // Mean inter-arrival times chosen to bracket one translation engine's
    // capacity: light, moderate, and beyond-single-engine load.
    let gaps_us = [80u64, 30, 12];
    for kind in [FtlKind::Dftl, FtlKind::LearnedFtl] {
        for &shards in &open_shards {
            for &gap in &gaps_us {
                let mut r = fio_open_loop_run(
                    kind,
                    FioPattern::RandRead,
                    threads,
                    shards,
                    Duration::from_micros(gap),
                    device,
                    experiment,
                );
                open.add_row(vec![
                    kind.label().to_string(),
                    shards.to_string(),
                    format!("{:.1}", 1_000.0 / gap as f64),
                    format!("{:.1}", r.latencies.mean().as_micros_f64()),
                    format!("{:.1}", r.p99().as_micros_f64()),
                ]);
            }
        }
    }
    println!("open loop, latency vs offered load (Poisson arrivals)");
    print_table_with_verdict(
        &open,
        "the single-engine frontend saturates first: its latency blows up at offered \
         loads the sharded frontend still serves near service time",
    );

    // Observability: when `--trace-out` / `--metrics-out` are given, re-run
    // the headline configuration — LearnedFTL at QD 16 on the largest swept
    // shard count — with tracing on and export it. Per-shard activity lands
    // on separate trace processes ("shard N" in Perfetto).
    if args.tracing() {
        let shards = shard_counts[big];
        let traced = fio_qd_sharded_traced_run(
            FtlKind::LearnedFtl,
            FioPattern::RandRead,
            threads,
            16,
            shards,
            device,
            experiment,
        );
        println!("traced run: LearnedFTL, FIO randread, QD 16, shards={shards}");
        args.export_observability("fig23_shard_scaling", &traced.result)
            .expect("writing observability output failed");
    }

    if !scaling_holds {
        std::process::exit(1);
    }
}
