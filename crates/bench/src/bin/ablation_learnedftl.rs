//! Ablation study of LearnedFTL's design choices (not a paper figure, but the
//! knobs DESIGN.md calls out):
//!
//! * the number of linear pieces per in-place-update model (paper default: 8),
//! * the CMT share of the DRAM budget (paper default: 1.5 %),
//! * sequential initialisation on/off (minimum run length pushed very high
//!   disables it in practice).
//!
//! Each row reports the random-read hit ratios and throughput after the
//! paper's warm-up, so the contribution of each mechanism is visible.

use bench::{percent, print_header, print_table_with_verdict, BenchArgs, Scale};
use ftl_base::Ftl;
use harness::Runner;
use learnedftl::{LearnedFtl, LearnedFtlConfig};
use metrics::Table;
use workloads::{warmup, FioPattern, FioWorkload};

fn run(scale: Scale, config: LearnedFtlConfig) -> (f64, f64, f64, f64) {
    let device = scale.device();
    let experiment = scale.experiment();
    let mut ftl = LearnedFtl::new(device, config);
    warmup::paper_warmup(
        &mut ftl,
        experiment.warmup_io_pages,
        experiment.warmup_overwrites,
        31,
    );
    let coverage = ftl.model_coverage();
    let mut wl = FioWorkload::new(
        FioPattern::RandRead,
        ftl.logical_pages(),
        scale.fio_threads(),
        1,
        experiment.ops_per_stream,
        37,
    );
    let result = Runner::new().run(&mut ftl, &mut wl);
    (
        result.mib_per_sec(),
        result.model_hit_ratio(),
        result.cmt_hit_ratio(),
        coverage,
    )
}

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Ablation — pieces per model, CMT share, sequential initialisation",
        "8 pieces + 1.5% CMT + sequential init is the paper's configuration; each knob contributes",
        scale,
    );

    let mut table = Table::new(vec![
        "configuration",
        "RandRead MiB/s",
        "model hit",
        "CMT hit",
        "model coverage",
    ]);
    let mut add = |name: &str, cfg: LearnedFtlConfig| {
        let (mibs, model_hit, cmt_hit, coverage) = run(scale, cfg);
        table.add_row(vec![
            name.to_string(),
            format!("{mibs:.1}"),
            percent(model_hit),
            percent(cmt_hit),
            percent(coverage),
        ]);
        (name.to_string(), model_hit)
    };

    let default = add("default (8 pieces, 1.5% CMT)", LearnedFtlConfig::default());
    let one_piece = add(
        "1 piece per model",
        LearnedFtlConfig::default().with_max_pieces(1),
    );
    add(
        "2 pieces per model",
        LearnedFtlConfig::default().with_max_pieces(2),
    );
    add(
        "16 pieces per model",
        LearnedFtlConfig::default().with_max_pieces(16),
    );
    add(
        "no CMT (models only)",
        LearnedFtlConfig::default().with_cmt_ratio(0.0),
    );
    add(
        "3% CMT (baseline-sized)",
        LearnedFtlConfig::default().with_cmt_ratio(0.03),
    );
    add(
        "no sequential init",
        LearnedFtlConfig {
            seq_init_min_run: u32::MAX,
            ..LearnedFtlConfig::default()
        },
    );

    print_table_with_verdict(
        &table,
        &format!(
            "the default configuration's model hit ratio ({}) should be at least as high as the \
             single-piece variant ({}) — more pieces let a model survive fragmentation",
            percent(default.1),
            percent(one_piece.1)
        ),
    );

    bench::export_default_observability(&args, "ablation_learnedftl");
}
