//! GC-interference sweep: host tail latency under write-heavy open-loop load
//! with blocking vs *scheduled* garbage collection, for 1 and 4 FTL shards.
//!
//! This extends the paper: its FEMU platform (like every FTL in this repo
//! before PR 3) runs GC as a fully serial detour on the triggering host
//! write, so a collection's entire flash traffic lands in one host request's
//! latency. Scheduled GC (`GcMode::Scheduled`) instead commits a
//! collection's outcome up front and replays its page reads, page programs
//! and erases as `Priority::Gc` commands through the `ssd-sched` I/O
//! scheduler, where host commands bypass them per chip up to the GC
//! starvation bound. With PR 2's sharding, each shard runs its own scheduler
//! over its own channel group: one shard collecting leaves its siblings
//! completely undisturbed.
//!
//! The measured phase replays 128 KiB random writes (the paper's
//! warm-up-size I/O) on a seeded open-loop Poisson arrival process over a
//! pre-filled device, at a moderate and a write-heavy offered load. Three
//! shape checks anchor the figure (all enforced at exit):
//!
//! * **work invariance** — scheduled and blocking GC perform bit-identical
//!   aggregate flash work for LearnedFTL (its group allocator ignores
//!   device timing, so the identical request stream must produce identical
//!   collections; only *when* the time is charged may differ),
//! * **tail-latency win** — at shards=4 under the write-heavy load,
//!   scheduled GC improves host p99 over blocking GC for DFTL and
//!   LearnedFTL,
//! * **arbitration engaged** — the write-heavy point produces `gc_forced > 0`
//!   (the starvation bound really forces collections through host runs).
//!
//! The GC timeline column buckets *scheduler-observed collection
//! completions* (`FtlStats::gc_complete_events`), not trigger times: under
//! scheduled GC a collection finishes when its last charge drains, which is
//! the timeline the tail latencies actually experience.

use ftl_base::GcMode;
use harness::experiments::{fio_gc_interference_run, fio_gc_interference_traced_run};
use harness::{FtlKind, RunResult};
use metrics::{GcTimeline, Table};
use ssd_sim::Duration;

use bench::{print_header, print_table_with_verdict, shard_scaling_device, times, BenchArgs};

/// 128 KiB requests: large writes keep several page programs in flight per
/// chip, which is what makes queued GC charges yield — and the starvation
/// bound force them through.
const WRITE_PAGES: u32 = 32;
/// Open-loop request streams (round-robin sources, not closed-loop threads).
const THREADS: usize = 4;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    let device = shard_scaling_device(scale);
    print_header(
        "Fig. 24 (extension) — GC interference: blocking vs scheduled GC, FIO randwrite 128 KiB",
        "routing GC flash traffic through the scheduler's GC priority class bounds \
         host-vs-GC interference per chip: same total flash work, better write-heavy p99",
        scale,
    );
    println!("device: {}", device.geometry);

    // Offered loads for 128 KiB requests: `moderate` (1.8 ms gaps) leaves
    // ample headroom; the last entry — "the write-heavy point" of the shape
    // checks, 0.9 ms gaps — offers what the device sustains *with* its
    // GC/translation overhead, so collections run constantly and every GC
    // stall lands on a waiting host request. (Far beyond saturation every
    // mode degenerates to makespan and tails stop measuring interference.)
    let gaps_us: [u64; 2] = [1_800, 900];
    let shard_counts = [1usize, 4];
    let kinds = [
        FtlKind::Dftl,
        FtlKind::Tpftl,
        FtlKind::LeaFtl,
        FtlKind::LearnedFtl,
    ];
    let experiment = scale.experiment();

    let mut table = Table::new(vec![
        "FTL",
        "shards",
        "GC mode",
        "gap (us)",
        "P99 (ms)",
        "P99.9 (ms)",
        "GCs",
        "yields",
        "forced",
        "stalled",
        "WA",
        "GC timeline peak/bucket",
    ]);

    // results[kind][shards][mode] at the heavy load point.
    let mut heavy: Vec<Vec<Vec<Option<RunResult>>>> =
        vec![vec![vec![None, None]; shard_counts.len()]; kinds.len()];

    for (ki, &kind) in kinds.iter().enumerate() {
        for (si, &shards) in shard_counts.iter().enumerate() {
            for (mi, &mode) in [GcMode::Blocking, GcMode::Scheduled].iter().enumerate() {
                for (gi, &gap) in gaps_us.iter().enumerate() {
                    let mut r = fio_gc_interference_run(
                        kind,
                        THREADS,
                        WRITE_PAGES,
                        shards,
                        mode,
                        Duration::from_micros(gap),
                        device,
                        experiment,
                    );
                    // Bucket scheduler-observed GC completions over the run.
                    let bucket = Duration::from_millis(100);
                    let timeline = GcTimeline::from_events(&r.stats.gc_complete_events, bucket);
                    table.add_row(vec![
                        kind.label().to_string(),
                        shards.to_string(),
                        format!("{mode:?}"),
                        gap.to_string(),
                        format!("{:.2}", r.p99().as_micros_f64() / 1000.0),
                        format!("{:.2}", r.p999().as_micros_f64() / 1000.0),
                        r.stats.gc_count.to_string(),
                        r.stats.gc_yields.to_string(),
                        r.stats.gc_forced.to_string(),
                        r.stats.gc_stalled_exits.to_string(),
                        format!("{:.2}", r.write_amplification()),
                        format!(
                            "{} ({:.1} mean)",
                            timeline.peak(),
                            timeline.mean_per_bucket()
                        ),
                    ]);
                    if gi == gaps_us.len() - 1 {
                        heavy[ki][si][mi] = Some(r);
                    }
                }
            }
        }
    }

    // ---- shape checks ------------------------------------------------------
    let ki_of = |kind: FtlKind| kinds.iter().position(|&k| k == kind).expect("swept");
    let mut ok = true;
    let mut verdicts: Vec<String> = Vec::new();

    // 1. Work invariance for LearnedFTL at shards 1 and 4.
    let learned = ki_of(FtlKind::LearnedFtl);
    for (si, &shards) in shard_counts.iter().enumerate() {
        let b = heavy[learned][si][0].as_ref().expect("blocking run");
        let s = heavy[learned][si][1].as_ref().expect("scheduled run");
        let same = b.stats.gc_page_reads == s.stats.gc_page_reads
            && b.stats.gc_page_writes == s.stats.gc_page_writes
            && b.stats.blocks_erased == s.stats.blocks_erased
            && b.device.reads == s.device.reads
            && b.device.programs == s.device.programs
            && b.device.erases == s.device.erases;
        if !same || b.stats.gc_count == 0 {
            ok = false;
        }
        verdicts.push(format!(
            "LearnedFTL shards={shards}: {} GCs, flash work scheduled==blocking: {}",
            b.stats.gc_count,
            if same { "yes" } else { "NO" }
        ));
    }

    // 2. Scheduled beats blocking p99 at shards=4 under the heavy point.
    let four = shard_counts.iter().position(|&s| s == 4).expect("swept");
    for kind in [FtlKind::Dftl, FtlKind::LearnedFtl] {
        let ki = ki_of(kind);
        let p99_b = heavy[ki][four][0].as_mut().expect("blocking run").p99();
        let p99_s = heavy[ki][four][1].as_mut().expect("scheduled run").p99();
        if p99_s >= p99_b {
            ok = false;
        }
        verdicts.push(format!(
            "{} shards=4 heavy p99: scheduled {:.2} ms vs blocking {:.2} ms ({} better)",
            kind.label(),
            p99_s.as_micros_f64() / 1000.0,
            p99_b.as_micros_f64() / 1000.0,
            times(p99_b.as_micros_f64() / p99_s.as_micros_f64().max(f64::MIN_POSITIVE)),
        ));
    }

    // 3. The write-heavy point really exercises the starvation bound.
    let forced: u64 = kinds
        .iter()
        .enumerate()
        .map(|(ki, _)| {
            heavy[ki][four][1]
                .as_ref()
                .map(|r| r.stats.gc_forced)
                .unwrap_or(0)
        })
        .sum();
    if forced == 0 {
        ok = false;
    }
    verdicts.push(format!(
        "gc_forced at the write-heavy point (shards=4, scheduled, all FTLs): {forced}"
    ));

    print_table_with_verdict(
        &table,
        &format!(
            "{} — {}",
            verdicts.join("; "),
            if ok {
                "all GC-scheduling invariants hold"
            } else {
                "INVARIANT VIOLATED"
            }
        ),
    );

    // Observability: when `--trace-out` / `--metrics-out` are given, re-run
    // the write-heavy scheduled-GC point (LearnedFTL, shards=4) with tracing
    // on and export it — the trace shows GC charge spans yielding to host
    // commands on the per-chip scheduler tracks.
    if args.tracing() {
        let traced = fio_gc_interference_traced_run(
            FtlKind::LearnedFtl,
            THREADS,
            WRITE_PAGES,
            4,
            GcMode::Scheduled,
            Duration::from_micros(gaps_us[gaps_us.len() - 1]),
            device,
            experiment,
        );
        println!("traced run: LearnedFTL, scheduled GC, shards=4, write-heavy point");
        args.export_observability("fig24_gc_interference", &traced)
            .expect("writing observability output failed");
    }

    if !ok {
        std::process::exit(1);
    }
}
