//! Figure 2: sequential vs random read performance of a demand-based FTL
//! (TPFTL) as the thread count grows, plus the CMT hit ratio.
//!
//! Paper's finding: random-read throughput stays far below sequential-read
//! throughput regardless of thread count (up to ~60 % lower), because the CMT
//! hit ratio collapses to ~0 % under random reads while staying high under
//! sequential reads.

use bench::{percent, print_header, print_table_with_verdict, BenchArgs, Scale};
use harness::experiments::{fio_read_run, ExperimentScale};
use harness::FtlKind;
use metrics::Table;
use workloads::FioPattern;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 2 — TPFTL read throughput and CMT hit ratio vs thread count",
        "random reads are up to ~60% slower than sequential reads and their CMT hit ratio is ~0%",
        scale,
    );
    let threads_list: &[usize] = match scale {
        Scale::Quick => &[1, 4],
        _ => &[1, 16, 32, 64],
    };
    let device = scale.device();
    let experiment: ExperimentScale = scale.experiment();

    let mut table = Table::new(vec![
        "threads",
        "SeqRead MiB/s",
        "RandRead MiB/s",
        "rand/seq",
        "SeqRead CMT hit",
        "RandRead CMT hit",
    ]);
    let mut worst_ratio: f64 = 1.0;
    let mut last_rand_hit = 0.0;
    for &threads in threads_list {
        let seq = fio_read_run(
            FtlKind::Tpftl,
            FioPattern::SeqRead,
            threads,
            device,
            experiment,
        );
        let rand = fio_read_run(
            FtlKind::Tpftl,
            FioPattern::RandRead,
            threads,
            device,
            experiment,
        );
        let ratio = if seq.mib_per_sec() > 0.0 {
            rand.mib_per_sec() / seq.mib_per_sec()
        } else {
            0.0
        };
        worst_ratio = worst_ratio.min(ratio);
        last_rand_hit = rand.cmt_hit_ratio();
        table.add_row(vec![
            threads.to_string(),
            format!("{:.1}", seq.mib_per_sec()),
            format!("{:.1}", rand.mib_per_sec()),
            format!("{ratio:.2}"),
            percent(seq.cmt_hit_ratio()),
            percent(rand.cmt_hit_ratio()),
        ]);
    }
    let verdict = format!(
        "random reads reach only {:.0}% of sequential throughput at the worst point \
         (paper: ~40%), and the random-read CMT hit ratio is {} (paper: ~0%)",
        worst_ratio * 100.0,
        percent(last_rand_hit)
    );
    print_table_with_verdict(&table, &verdict);

    bench::export_default_observability(&args, "fig02_motivation");
}
