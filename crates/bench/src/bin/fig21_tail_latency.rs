//! Figure 21: P99 and P99.9 tail latencies under the WebSearch1-3 and Systor
//! traces for TPFTL, LeaFTL, LearnedFTL and the ideal FTL.
//!
//! Paper's finding: LearnedFTL reduces the P99 tail latency by 2.9–7.4×
//! (average 5.5×) vs TPFTL and 3.0–12.2× (average 8.2×) vs LeaFTL, because
//! its models remove the sporadic double/triple reads that dominate the tail.

use bench::{print_header, print_table_with_verdict, BenchArgs};
use harness::experiments::{trace_run, trace_traced_run};
use harness::FtlKind;
use metrics::Table;
use workloads::TraceKind;

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 21 — P99 / P99.9 tail latency under the four traces",
        "LearnedFTL cuts P99 latency by ~5.5x vs TPFTL and ~8.2x vs LeaFTL on average",
        scale,
    );
    let device = scale.device();
    let experiment = scale.experiment();
    let kinds = [
        FtlKind::Tpftl,
        FtlKind::LeaFtl,
        FtlKind::LearnedFtl,
        FtlKind::Ideal,
    ];
    let trace_len = experiment.single_stream_ops;
    let streams = scale.fio_threads().min(16);

    let mut table = Table::new(vec![
        "trace",
        "FTL",
        "P99 (us)",
        "P99.9 (us)",
        "TPFTL P99 / this P99",
    ]);
    let mut tpftl_gains = Vec::new();
    let mut leaftl_gains = Vec::new();
    for trace in TraceKind::all() {
        let mut p99s = Vec::new();
        for kind in kinds {
            let mut result = trace_run(kind, trace, streams, trace_len, device, experiment);
            let p99 = result.p99();
            let p999 = result.p999();
            p99s.push((kind, p99));
            table.add_row(vec![
                trace.label().to_string(),
                kind.label().to_string(),
                format!("{:.1}", p99.as_micros_f64()),
                format!("{:.1}", p999.as_micros_f64()),
                String::new(),
            ]);
        }
        let tpftl = p99s[0].1.as_micros_f64();
        let leaftl = p99s[1].1.as_micros_f64();
        let learned = p99s[2].1.as_micros_f64().max(1e-9);
        tpftl_gains.push(tpftl / learned);
        leaftl_gains.push(leaftl / learned);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    print_table_with_verdict(
        &table,
        &format!(
            "LearnedFTL improves P99 by {:.1}x on average over TPFTL (paper: 5.5x) and \
             {:.1}x over LeaFTL (paper: 8.2x)",
            avg(&tpftl_gains),
            avg(&leaftl_gains)
        ),
    );

    // Observability: export a traced LearnedFTL replay of the first trace
    // when requested; the comparison table above stays untraced.
    if args.tracing() {
        let trace = TraceKind::all()[0];
        let traced = trace_traced_run(
            FtlKind::LearnedFtl,
            trace,
            streams,
            trace_len,
            device,
            experiment,
        );
        println!("traced run: LearnedFTL, {} replay", trace.label());
        args.export_observability("fig21_tail_latency", &traced)
            .expect("writing observability output failed");
    }
}
