//! Queue-depth sweep: IOPS, mean queueing delay and P99 latency for
//! QD ∈ {1, 4, 16, 64} under FIO-style 4 KiB random reads, for LearnedFTL
//! and the DFTL / TPFTL / LeaFTL baselines.
//!
//! This extends the paper's tail-latency analysis (Fig. 21): the paper's FEMU
//! platform exposes intra-SSD parallelism through the host's queue depth, and
//! the gap between the FTL designs widens as deeper queues keep more chips
//! busy. Two shape checks anchor the sweep:
//!
//! * IOPS at QD 16 must be strictly higher than at QD 1 for every FTL (the
//!   device has 16+ chips at standard scale, so a deeper queue exposes real
//!   parallelism),
//! * at QD 1 the queue-depth runner must agree with the legacy blocking
//!   runner's latency totals on a single-stream workload (the bounded queue
//!   is a strict generalisation, not a different model).

use bench::{print_header, print_table_with_verdict, BenchArgs};
use harness::experiments::{
    fio_qd_run, fio_qd_sharded_run, fio_qd_sharded_traced_run, fio_qd_traced_run,
};
use harness::{FtlKind, RunResult, Runner};
use metrics::Table;
use ssd_sim::SsdConfig;
use workloads::{FioPattern, FioWorkload};

const DEPTHS: [usize; 4] = [1, 4, 16, 64];

fn main() {
    let args = BenchArgs::from_env();
    let scale = args.scale();
    print_header(
        "Fig. 21 extension — queue-depth sweep, FIO randread 4 KiB",
        "deeper queues expose chip parallelism: IOPS rises with QD while per-request \
         latency absorbs the queueing delay; LearnedFTL holds its lead at every depth",
        scale,
    );
    // Sharded runs use the shard-ready geometry (8 channels, shard-sized
    // block rows) so every design builds on every channel group.
    let device = if args.shards > 1 {
        let device = bench::shard_scaling_device(scale);
        println!(
            "running sharded: {} per-channel-group FTL shards, each behind its own \
             serial translation engine, on {}",
            args.shards, device.geometry
        );
        device
    } else {
        scale.device()
    };
    let experiment = scale.experiment();
    let threads = scale.fio_threads();
    let kinds = [
        FtlKind::Dftl,
        FtlKind::Tpftl,
        FtlKind::LeaFtl,
        FtlKind::LearnedFtl,
    ];

    let mut table = Table::new(vec![
        "FTL",
        "QD",
        "IOPS",
        "MiB/s",
        "mean queueing (us)",
        "P99 (us)",
        "P99.9 (us)",
    ]);
    let mut qd16_beats_qd1 = true;
    for kind in kinds {
        let mut iops_at = [0.0f64; DEPTHS.len()];
        for (i, &depth) in DEPTHS.iter().enumerate() {
            // With --shards N the sweep measures the sharded frontend (whose
            // per-shard engines serialise translation); the default is the
            // monolithic concurrent path, unchanged.
            let mut r: RunResult = if args.shards > 1 {
                fio_qd_sharded_run(
                    kind,
                    FioPattern::RandRead,
                    threads,
                    depth,
                    args.shards,
                    device,
                    experiment,
                )
                .result
            } else {
                fio_qd_run(
                    kind,
                    FioPattern::RandRead,
                    threads,
                    depth,
                    device,
                    experiment,
                )
            };
            iops_at[i] = r.iops();
            table.add_row(vec![
                kind.label().to_string(),
                depth.to_string(),
                format!("{:.0}", r.iops()),
                format!("{:.1}", r.mib_per_sec()),
                format!("{:.1}", r.mean_queueing().as_micros_f64()),
                format!("{:.1}", r.p99().as_micros_f64()),
                format!("{:.1}", r.p999().as_micros_f64()),
            ]);
        }
        if iops_at[2] <= iops_at[0] {
            qd16_beats_qd1 = false;
        }
    }

    // Consistency anchor: QD1 vs the legacy blocking runner on one stream.
    let qd1_matches_legacy = qd1_matches_legacy(device);

    let verdict = format!(
        "QD16 > QD1 IOPS for every FTL: {}; QD1 matches the legacy blocking runner \
         bit-for-bit on one stream: {}",
        if qd16_beats_qd1 {
            "yes"
        } else {
            "NO — parallelism not exposed"
        },
        if qd1_matches_legacy {
            "yes"
        } else {
            "NO — queue model diverged"
        },
    );
    print_table_with_verdict(&table, &verdict);

    // Observability: when `--trace-out` / `--metrics-out` are given, re-run
    // the designated configuration (LearnedFTL at QD 16) with tracing on and
    // export it. The sweep above stays untraced so its numbers are the same
    // whether or not observability was requested.
    if args.tracing() {
        let traced: RunResult = if args.shards > 1 {
            fio_qd_sharded_traced_run(
                FtlKind::LearnedFtl,
                FioPattern::RandRead,
                threads,
                16,
                args.shards,
                device,
                experiment,
            )
            .result
        } else {
            fio_qd_traced_run(
                FtlKind::LearnedFtl,
                FioPattern::RandRead,
                threads,
                16,
                device,
                experiment,
            )
        };
        println!("traced run: LearnedFTL, FIO randread, QD 16");
        args.export_observability("fig21_qd_sweep", &traced)
            .expect("writing observability output failed");
    }

    if !qd16_beats_qd1 || !qd1_matches_legacy {
        std::process::exit(1);
    }
}

/// Runs the same single-stream randread workload through both runners and
/// compares the latency totals exactly.
fn qd1_matches_legacy(device: SsdConfig) -> bool {
    let build = || {
        let mut ftl = FtlKind::LearnedFtl.build(device);
        workloads::warmup::paper_warmup(ftl.as_mut(), 32, 1, 0xFEED);
        ftl
    };
    let wl = |pages: u64| FioWorkload::new(FioPattern::RandRead, pages, 1, 1, 2_000, 0xBEEF);

    let mut legacy_ftl = build();
    let pages = legacy_ftl.logical_pages();
    let legacy = Runner::new().run(legacy_ftl.as_mut(), &mut wl(pages));
    let mut qd_ftl = build();
    let qd = Runner::new().run_qd(qd_ftl.as_mut(), &mut wl(pages), 1);

    legacy.requests == qd.requests
        && legacy.elapsed == qd.elapsed
        && legacy.latencies.mean() == qd.latencies.mean()
        && legacy.latencies.max() == qd.latencies.max()
}
