//! # bench
//!
//! Shared plumbing for the figure-reproduction binaries (`src/bin/figXX_*.rs`)
//! and the Criterion microbenchmarks (`benches/`).
//!
//! Every binary reproduces one table or figure of the LearnedFTL paper: it
//! runs the corresponding experiment through [`harness::experiments`], prints
//! the measured series next to what the paper reports, and states the shape
//! criterion (who should win, roughly by how much). The binaries honour one
//! environment variable:
//!
//! * `LEARNEDFTL_SCALE=quick|standard|paper` — selects the device size and
//!   experiment scale. `standard` (the default) uses the scaled-down device
//!   described in DESIGN.md; `paper` uses the full 32 GiB geometry (slow);
//!   `quick` is a smoke-test size used by CI.

use harness::experiments::ExperimentScale;
use harness::RunResult;
use metrics::Table;
use ssd_sim::{Duration, Geometry, SsdConfig};

/// The experiment size selected via `LEARNEDFTL_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test size (tiny device, few thousand requests).
    Quick,
    /// The default scaled-down reproduction (≈ 768 MiB device).
    Standard,
    /// The paper's full 32 GiB geometry (slow; hours for the full suite).
    Paper,
}

impl Scale {
    /// Reads the scale from the `LEARNEDFTL_SCALE` environment variable.
    pub fn from_env() -> Scale {
        match std::env::var("LEARNEDFTL_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "quick" => Scale::Quick,
            "paper" => Scale::Paper,
            _ => Scale::Standard,
        }
    }

    /// The device configuration for this scale.
    pub fn device(self) -> SsdConfig {
        match self {
            Scale::Quick => SsdConfig::tiny(),
            Scale::Standard => SsdConfig::small(),
            Scale::Paper => SsdConfig::paper(),
        }
    }

    /// The experiment scale (warm-up volume, request counts) for this scale.
    pub fn experiment(self) -> ExperimentScale {
        match self {
            Scale::Quick => ExperimentScale::quick(),
            Scale::Standard => ExperimentScale::standard(),
            Scale::Paper => ExperimentScale {
                warmup_io_pages: 128,
                warmup_overwrites: 6,
                ops_per_stream: 20_000,
                single_stream_ops: 1_000_000,
            },
        }
    }

    /// Number of FIO threads: the paper uses 64; the quick scale uses fewer so
    /// the tiny device is not overwhelmed.
    pub fn fio_threads(self) -> usize {
        match self {
            Scale::Quick => 4,
            _ => 64,
        }
    }

    /// Human-readable description printed in every experiment header.
    pub fn describe(self) -> String {
        let dev = self.device();
        format!(
            "scale={:?} device={} logical={} MiB threads={}",
            self,
            dev.geometry,
            dev.logical_bytes() / (1024 * 1024),
            self.fio_threads()
        )
    }
}

/// The device used by the shard-scaling experiment (`fig23_shard_scaling`):
/// the same size classes as [`Scale::device`], but shaped so the 1/2/4/8
/// shard sweep is healthy at every count:
///
/// * 8 channels, so every swept shard count divides the device into equal
///   channel groups (the paper's geometry already has 8; the quick and
///   standard presets have fewer),
/// * an eighth of the device — a 2-chip shard — still holds at least one
///   full translation-page span (512 mappings) per block row, which
///   LearnedFTL's group-based allocation requires (`2 chips × 256
///   pages/block = 512`), with enough block rows of over-provisioning left
///   for group GC to breathe.
pub fn shard_scaling_device(scale: Scale) -> SsdConfig {
    match scale {
        // 256 MiB raw; the generous OP (like SsdConfig::tiny's) keeps
        // group-based allocation workable on 2-chip shards.
        Scale::Quick => SsdConfig::tiny()
            .with_geometry(Geometry::new(8, 2, 1, 16, 256, 4096))
            .with_op_ratio(0.4),
        // 1 GiB raw (the small class rounded up to keep 8-shard row slack).
        Scale::Standard => SsdConfig::small()
            .with_geometry(Geometry::new(8, 2, 1, 64, 256, 4096))
            .with_op_ratio(0.125),
        Scale::Paper => SsdConfig::paper(),
    }
}

/// The base device of the plane-scaling sweep (`fig26_plane_scaling`): few
/// chips (so a bounded host queue saturates them and the extra planes are
/// the only head-room left), a per-chip block count divisible by 4 (every
/// swept plane count splits it evenly via [`SsdConfig::with_planes`]), and
/// 256-page blocks so LearnedFTL's group rows hold whole translation-page
/// spans at every plane count.
pub fn plane_scaling_device(scale: Scale) -> SsdConfig {
    match scale {
        // 256 MiB raw over 4 chips; the generous OP and block depth keep GC
        // (and LearnedFTL's group-row reserve at planes=4) out of the
        // measured window so the sweep isolates plane parallelism.
        Scale::Quick => SsdConfig::tiny()
            .with_geometry(Geometry::new(2, 2, 1, 64, 256, 4096))
            .with_op_ratio(0.4),
        // 768 MiB raw over 8 chips.
        Scale::Standard => SsdConfig::small()
            .with_geometry(Geometry::new(4, 2, 1, 96, 256, 4096))
            .with_op_ratio(0.25),
        Scale::Paper => SsdConfig::paper(),
    }
}

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Number of FTL shards (`--shards N`); `1` (the default) runs the
    /// monolithic FTLs exactly as before.
    pub shards: usize,
    /// Number of planes per chip (`--planes N`); `1` (the default) lets the
    /// plane-scaling binary sweep its standard `{1, 2, 4}` set.
    pub planes: u32,
    /// Force the quick (smoke-test) scale regardless of `LEARNEDFTL_SCALE`
    /// (`--quick`); what CI passes to the wall-clock scaling check.
    pub quick: bool,
    /// Write a Chrome-trace-event JSON of the binary's designated traced run
    /// to this path (`--trace-out PATH`). Open it in Perfetto or
    /// `chrome://tracing`. Enables tracing for that run.
    pub trace_out: Option<String>,
    /// Write an interval time-series CSV (plane/bus/GC utilisation, queue
    /// depths, CMT hit rate) of the traced run to this path
    /// (`--metrics-out PATH`). Enables tracing for that run.
    pub metrics_out: Option<String>,
    /// Sampling interval of the metrics CSV in microseconds of simulated
    /// time (`--metrics-interval N`); defaults to 100 µs.
    pub metrics_interval_us: Option<u64>,
    /// Write the deterministic trace-analysis report (latency decomposition,
    /// GC tax, utilisation, tail exemplars — [`metrics::analysis`]) of the
    /// traced run to this path (`--analyze-out PATH`). Enables tracing for
    /// that run.
    pub analyze_out: Option<String>,
    /// Write the machine-readable `BENCH_*.json` wall-clock artifact of a
    /// benchmark binary to this path (`--bench-out PATH`); only
    /// `fig27_throughput` consumes it today, other binaries accept and
    /// ignore it.
    pub bench_out: Option<String>,
    /// Check the written BENCH artifact against a checked-in floors document
    /// (`--bench-floors PATH`; see [`metrics::check_bench_floors`]): the
    /// binary exits non-zero if any configuration's requests/sec fell below
    /// its floor. Only `fig27_throughput` consumes it today.
    pub bench_floors: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            shards: 1,
            planes: 1,
            quick: false,
            trace_out: None,
            metrics_out: None,
            metrics_interval_us: None,
            analyze_out: None,
            bench_out: None,
            bench_floors: None,
        }
    }
}

impl BenchArgs {
    /// Parses the process's command line, exiting with a usage message on
    /// malformed input. Binaries call this once at the top of `main`.
    pub fn from_env() -> BenchArgs {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: <figure> [--shards N] [--planes N] [--quick] \
                     [--trace-out PATH] [--metrics-out PATH] [--metrics-interval US] \
                     [--analyze-out PATH] [--bench-out PATH] [--bench-floors PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    /// The scale this invocation runs at: `--quick` wins, the
    /// `LEARNEDFTL_SCALE` environment variable otherwise.
    pub fn scale(&self) -> Scale {
        if self.quick {
            Scale::Quick
        } else {
            Scale::from_env()
        }
    }

    /// Parses an argument list (`--shards N` / `--shards=N` / `--planes N` /
    /// `--planes=N` / `--quick` / `--trace-out PATH` / `--metrics-out PATH` /
    /// `--metrics-interval US`, with `=` spellings throughout).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<BenchArgs, String> {
        /// Extracts the string value of `--name V` / `--name=V` (where `arg`
        /// is the current argument and `iter` supplies a space-separated
        /// value), or `None` when `arg` is a different flag.
        fn flag_string(
            name: &str,
            arg: &str,
            iter: &mut impl Iterator<Item = String>,
        ) -> Result<Option<String>, String> {
            if arg == name {
                Ok(Some(iter.next().ok_or(format!("{name} needs a value"))?))
            } else if let Some(v) = arg.strip_prefix(name).and_then(|v| v.strip_prefix('=')) {
                Ok(Some(v.to_string()))
            } else {
                Ok(None)
            }
        }

        /// Like [`flag_string`] but for positive-integer values.
        fn flag_value(
            name: &str,
            arg: &str,
            iter: &mut impl Iterator<Item = String>,
        ) -> Result<Option<u64>, String> {
            let Some(value) = flag_string(name, arg, iter)? else {
                return Ok(None);
            };
            value
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Some)
                .ok_or_else(|| format!("`{name} {value}`: expected a positive integer"))
        }

        let mut parsed = BenchArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if arg == "--quick" {
                parsed.quick = true;
            } else if let Some(n) = flag_value("--shards", &arg, &mut iter)? {
                parsed.shards = n as usize;
            } else if let Some(n) = flag_value("--planes", &arg, &mut iter)? {
                parsed.planes = n.min(u64::from(u32::MAX)) as u32;
            } else if let Some(n) = flag_value("--metrics-interval", &arg, &mut iter)? {
                parsed.metrics_interval_us = Some(n);
            } else if let Some(path) = flag_string("--trace-out", &arg, &mut iter)? {
                parsed.trace_out = Some(path);
            } else if let Some(path) = flag_string("--metrics-out", &arg, &mut iter)? {
                parsed.metrics_out = Some(path);
            } else if let Some(path) = flag_string("--analyze-out", &arg, &mut iter)? {
                parsed.analyze_out = Some(path);
            } else if let Some(path) = flag_string("--bench-out", &arg, &mut iter)? {
                parsed.bench_out = Some(path);
            } else if let Some(path) = flag_string("--bench-floors", &arg, &mut iter)? {
                parsed.bench_floors = Some(path);
            } else {
                return Err(format!("unknown argument `{arg}`"));
            }
        }
        Ok(parsed)
    }

    /// Whether this invocation asked for observability output: binaries use
    /// this to route their designated run through the traced experiment
    /// variants in [`harness::experiments`].
    pub fn tracing(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.analyze_out.is_some()
    }

    /// The metrics CSV sampling interval (simulated time).
    pub fn metrics_interval(&self) -> Duration {
        Duration::from_micros(self.metrics_interval_us.unwrap_or(100))
    }

    /// Writes the requested observability artifacts of a traced `result`:
    /// the Chrome trace JSON to `--trace-out`, the interval CSV to
    /// `--metrics-out`, the trace-analysis report to `--analyze-out`, plus a
    /// self-profiling summary line on stdout. `figure` names the producing
    /// binary/protocol and is embedded in the analysis artifact as
    /// provenance. A no-op when no observability flag was given.
    pub fn export_observability(&self, figure: &str, result: &RunResult) -> std::io::Result<()> {
        if !self.tracing() {
            return Ok(());
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, metrics::chrome_trace_json(&result.trace))?;
            println!(
                "trace: wrote {} events to {path} (open in Perfetto / chrome://tracing)",
                result.profile.trace_events
            );
        }
        if let Some(path) = &self.metrics_out {
            let interval = self.metrics_interval();
            std::fs::write(path, metrics::metrics_csv(&result.trace, interval))?;
            println!(
                "metrics: wrote {} us interval series to {path}",
                interval.as_nanos() / 1_000
            );
        }
        if let Some(path) = &self.analyze_out {
            let analysis = metrics::analyze(&result.trace);
            std::fs::write(path, analysis.to_json(figure))?;
            let tax = analysis.gc_tax();
            println!(
                "analysis: wrote decomposition of {} requests to {path} \
                 (gc tax {} ns over {} requests)",
                analysis.requests.len(),
                tax.host_wait_ns,
                tax.affected_requests,
            );
        }
        println!(
            "self-profile: {:.3} s wall, {:.0} requests/s, {:.0} trace events/s",
            result.profile.wall.as_secs_f64(),
            result.profile.requests_per_sec(),
            result.profile.events_per_sec()
        );
        print_alloc_profile();
        Ok(())
    }
}

/// Fallback observability export for figures without a figure-specific
/// traced protocol: when `--trace-out` / `--metrics-out` was given, re-runs
/// the canonical closed-loop FIO randread workload (LearnedFTL) at this
/// invocation's scale with tracing on and exports it. Binaries with a more
/// representative protocol (the QD sweep, shard scaling, GC interference)
/// trace that protocol instead of calling this. A no-op when no
/// observability flag was given. `figure` names the calling binary; it is
/// recorded in the analysis artifact as provenance.
pub fn export_default_observability(args: &BenchArgs, figure: &str) {
    if !args.tracing() {
        return;
    }
    let scale = args.scale();
    let traced = harness::experiments::fio_read_traced_run(
        harness::FtlKind::LearnedFtl,
        workloads::FioPattern::RandRead,
        scale.fio_threads(),
        scale.device(),
        scale.experiment(),
    );
    println!("traced run (default protocol): LearnedFTL, FIO randread, closed loop");
    args.export_observability(figure, &traced)
        .expect("writing observability output failed");
}

/// Prints the per-phase allocation profile when the harness was built with
/// the `alloc-profile` feature (`cargo run --features bench/alloc-profile`);
/// silent otherwise, so untraced output is byte-identical.
pub fn print_alloc_profile() {
    use harness::alloc_profile::{self, Phase};
    if !alloc_profile::enabled() {
        return;
    }
    for phase in Phase::ALL {
        let stats = alloc_profile::phase_stats(phase);
        println!(
            "alloc-profile: {:>6}: {:>12} allocations {:>14} bytes",
            phase.label(),
            stats.allocations,
            stats.bytes
        );
    }
}

/// Prints the standard experiment header.
pub fn print_header(figure: &str, claim: &str, scale: Scale) {
    println!("================================================================");
    println!("{figure}");
    println!("Paper's claim: {claim}");
    println!("{}", scale.describe());
    println!("================================================================");
}

/// Prints a table followed by a short shape-check verdict line.
pub fn print_table_with_verdict(table: &Table, verdict: &str) {
    println!("{}", table.render());
    println!("shape check: {verdict}");
    println!();
}

/// Formats a ratio as `x.xx×`.
pub fn times(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a fraction as a percentage.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_selection_defaults_to_standard() {
        std::env::remove_var("LEARNEDFTL_SCALE");
        assert_eq!(Scale::from_env(), Scale::Standard);
        assert_eq!(Scale::Quick.device(), SsdConfig::tiny());
        assert_eq!(Scale::Paper.device(), SsdConfig::paper());
        assert!(Scale::Standard.describe().contains("scale=Standard"));
    }

    #[test]
    fn shard_scaling_device_always_has_eight_channels() {
        for scale in [Scale::Quick, Scale::Standard, Scale::Paper] {
            let dev = shard_scaling_device(scale);
            assert_eq!(dev.geometry.channels, 8);
            for shards in [1u32, 2, 4, 8] {
                assert_eq!(dev.geometry.channels % shards, 0);
            }
        }
        // An eighth of the device (a 2-chip shard) must still hold one full
        // translation-page span per block row for LearnedFTL's groups.
        for scale in [Scale::Quick, Scale::Standard, Scale::Paper] {
            let g = shard_scaling_device(scale).geometry;
            let chips_per_shard = g.total_chips() / 8;
            assert!(chips_per_shard * u64::from(g.pages_per_block) >= 512);
        }
        // The standard class keeps small()'s chip count.
        let std_dev = shard_scaling_device(Scale::Standard);
        assert_eq!(
            std_dev.geometry.total_chips(),
            SsdConfig::small().geometry.total_chips()
        );
    }

    #[test]
    fn shards_flag_parses_both_spellings() {
        let args = |v: &[&str]| BenchArgs::parse(v.iter().map(|s| s.to_string()));
        assert_eq!(args(&[]).unwrap().shards, 1);
        assert_eq!(args(&["--shards", "4"]).unwrap().shards, 4);
        assert_eq!(args(&["--shards=8"]).unwrap().shards, 8);
        assert!(args(&["--quick"]).unwrap().quick);
        assert_eq!(args(&["--quick"]).unwrap().scale(), Scale::Quick);
        let both = args(&["--quick", "--shards", "2"]).unwrap();
        assert!(both.quick);
        assert_eq!(both.shards, 2);
        assert!(args(&["--shards"]).is_err());
        assert!(args(&["--shards", "0"]).is_err());
        assert!(args(&["--shards", "x"]).is_err());
        assert!(args(&["--frobnicate"]).is_err());
        assert_eq!(args(&[]).unwrap().planes, 1);
        assert_eq!(args(&["--planes", "2"]).unwrap().planes, 2);
        assert_eq!(args(&["--planes=4"]).unwrap().planes, 4);
        assert!(args(&["--planes"]).is_err());
        assert!(args(&["--planes", "0"]).is_err());
    }

    #[test]
    fn observability_flags_parse_both_spellings() {
        let args = |v: &[&str]| BenchArgs::parse(v.iter().map(|s| s.to_string()));
        let none = args(&[]).unwrap();
        assert_eq!(none.trace_out, None);
        assert_eq!(none.metrics_out, None);
        assert!(!none.tracing());
        assert_eq!(none.metrics_interval(), Duration::from_micros(100));

        let traced = args(&["--trace-out", "t.json"]).unwrap();
        assert_eq!(traced.trace_out.as_deref(), Some("t.json"));
        assert!(traced.tracing());

        let full = args(&[
            "--trace-out=t.json",
            "--metrics-out=m.csv",
            "--metrics-interval=250",
        ])
        .unwrap();
        assert_eq!(full.trace_out.as_deref(), Some("t.json"));
        assert_eq!(full.metrics_out.as_deref(), Some("m.csv"));
        assert_eq!(full.metrics_interval(), Duration::from_micros(250));

        assert!(args(&["--trace-out"]).is_err());
        assert!(args(&["--metrics-out"]).is_err());
        assert!(args(&["--metrics-interval", "0"]).is_err());
        assert!(args(&["--metrics-interval", "x"]).is_err());

        // --analyze-out enables tracing on its own; --bench-out does not
        // (wall-clock benchmarks time untraced runs too).
        let analyze = args(&["--analyze-out", "a.json"]).unwrap();
        assert_eq!(analyze.analyze_out.as_deref(), Some("a.json"));
        assert!(analyze.tracing());
        let bench = args(&["--bench-out=BENCH_fig27.json"]).unwrap();
        assert_eq!(bench.bench_out.as_deref(), Some("BENCH_fig27.json"));
        assert!(!bench.tracing());
        let floors = args(&["--bench-floors", "BENCH_floors_fig27.json"]).unwrap();
        assert_eq!(
            floors.bench_floors.as_deref(),
            Some("BENCH_floors_fig27.json")
        );
        assert!(!floors.tracing());
        assert!(args(&["--analyze-out"]).is_err());
        assert!(args(&["--bench-out"]).is_err());
        assert!(args(&["--bench-floors"]).is_err());
    }

    #[test]
    fn plane_scaling_device_splits_evenly_at_every_plane_count() {
        for scale in [Scale::Quick, Scale::Standard, Scale::Paper] {
            let base = plane_scaling_device(scale);
            for planes in [1u32, 2, 4] {
                let dev = base.with_planes(planes);
                assert_eq!(dev.geometry.planes_per_chip, planes);
                assert_eq!(
                    dev.geometry.total_pages(),
                    base.geometry.total_pages(),
                    "plane split must preserve capacity"
                );
                // LearnedFTL's group allocation must fit at every count.
                assert!(
                    learnedftl::LearnedFtlConfig::default()
                        .group_capacity_check(&dev)
                        .is_ok(),
                    "{scale:?} planes={planes} cannot host group allocation"
                );
            }
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(times(1.5), "1.50x");
        assert_eq!(percent(0.555), "55.5%");
    }
}
