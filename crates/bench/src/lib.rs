//! # bench
//!
//! Shared plumbing for the figure-reproduction binaries (`src/bin/figXX_*.rs`)
//! and the Criterion microbenchmarks (`benches/`).
//!
//! Every binary reproduces one table or figure of the LearnedFTL paper: it
//! runs the corresponding experiment through [`harness::experiments`], prints
//! the measured series next to what the paper reports, and states the shape
//! criterion (who should win, roughly by how much). The binaries honour one
//! environment variable:
//!
//! * `LEARNEDFTL_SCALE=quick|standard|paper` — selects the device size and
//!   experiment scale. `standard` (the default) uses the scaled-down device
//!   described in DESIGN.md; `paper` uses the full 32 GiB geometry (slow);
//!   `quick` is a smoke-test size used by CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use harness::experiments::ExperimentScale;
use metrics::Table;
use ssd_sim::SsdConfig;

/// The experiment size selected via `LEARNEDFTL_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test size (tiny device, few thousand requests).
    Quick,
    /// The default scaled-down reproduction (≈ 768 MiB device).
    Standard,
    /// The paper's full 32 GiB geometry (slow; hours for the full suite).
    Paper,
}

impl Scale {
    /// Reads the scale from the `LEARNEDFTL_SCALE` environment variable.
    pub fn from_env() -> Scale {
        match std::env::var("LEARNEDFTL_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "quick" => Scale::Quick,
            "paper" => Scale::Paper,
            _ => Scale::Standard,
        }
    }

    /// The device configuration for this scale.
    pub fn device(self) -> SsdConfig {
        match self {
            Scale::Quick => SsdConfig::tiny(),
            Scale::Standard => SsdConfig::small(),
            Scale::Paper => SsdConfig::paper(),
        }
    }

    /// The experiment scale (warm-up volume, request counts) for this scale.
    pub fn experiment(self) -> ExperimentScale {
        match self {
            Scale::Quick => ExperimentScale::quick(),
            Scale::Standard => ExperimentScale::standard(),
            Scale::Paper => ExperimentScale {
                warmup_io_pages: 128,
                warmup_overwrites: 6,
                ops_per_stream: 20_000,
                single_stream_ops: 1_000_000,
            },
        }
    }

    /// Number of FIO threads: the paper uses 64; the quick scale uses fewer so
    /// the tiny device is not overwhelmed.
    pub fn fio_threads(self) -> usize {
        match self {
            Scale::Quick => 4,
            _ => 64,
        }
    }

    /// Human-readable description printed in every experiment header.
    pub fn describe(self) -> String {
        let dev = self.device();
        format!(
            "scale={:?} device={} logical={} MiB threads={}",
            self,
            dev.geometry,
            dev.logical_bytes() / (1024 * 1024),
            self.fio_threads()
        )
    }
}

/// Prints the standard experiment header.
pub fn print_header(figure: &str, claim: &str, scale: Scale) {
    println!("================================================================");
    println!("{figure}");
    println!("Paper's claim: {claim}");
    println!("{}", scale.describe());
    println!("================================================================");
}

/// Prints a table followed by a short shape-check verdict line.
pub fn print_table_with_verdict(table: &Table, verdict: &str) {
    println!("{}", table.render());
    println!("shape check: {verdict}");
    println!();
}

/// Formats a ratio as `x.xx×`.
pub fn times(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a fraction as a percentage.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_selection_defaults_to_standard() {
        std::env::remove_var("LEARNEDFTL_SCALE");
        assert_eq!(Scale::from_env(), Scale::Standard);
        assert_eq!(Scale::Quick.device(), SsdConfig::tiny());
        assert_eq!(Scale::Paper.device(), SsdConfig::paper());
        assert!(Scale::Standard.describe().contains("scale=Standard"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(times(1.5), "1.50x");
        assert_eq!(percent(0.555), "55.5%");
    }
}
