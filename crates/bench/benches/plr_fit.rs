//! Criterion microbenchmarks for the greedy piecewise linear regression used
//! by both LeaFTL (γ-bounded approximate segments) and LearnedFTL (exact
//! pieces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use learned_index::{GreedyPlr, Point};

fn linear_points(n: u64) -> Vec<Point> {
    (0..n).map(|i| Point::new(i, 10_000 + i)).collect()
}

fn noisy_points(n: u64) -> Vec<Point> {
    // Deterministic jitter so segment counts are stable across runs.
    (0..n)
        .map(|i| Point::new(i, 10_000 + i * 2 + (i * 2_654_435_761 % 7)))
        .collect()
}

fn bench_fit_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("plr_fit_linear");
    for &n in &[128u64, 512, 2048] {
        let points = linear_points(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| GreedyPlr::new(0.5).fit(pts))
        });
    }
    group.finish();
}

fn bench_fit_gammas(c: &mut Criterion) {
    let points = noisy_points(512);
    let mut group = c.benchmark_group("plr_fit_gamma");
    for &gamma in &[0.5f64, 4.0, 16.0] {
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &points, |b, pts| {
            b.iter(|| GreedyPlr::new(gamma).fit(pts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit_sizes, bench_fit_gammas);
criterion_main!(benches);
