//! Criterion microbenchmarks for the PPN ⇄ VPPN codec (paper § III-C): the
//! conversion sits on LearnedFTL's read path, so it must be cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use ssd_sim::{ppn_to_vppn, vppn_to_ppn, Geometry, PhysAddr};

fn bench_codec(c: &mut Criterion) {
    let g = Geometry::new(8, 8, 1, 256, 512, 4096);
    let total = g.total_pages();
    let mut ppn = 12_345u64;
    c.bench_function("ppn_to_vppn", |b| {
        b.iter(|| {
            ppn = (ppn * 2_654_435_761) % total;
            ppn_to_vppn(ppn, &g)
        })
    });
    let mut vppn = 54_321u64;
    c.bench_function("vppn_to_ppn", |b| {
        b.iter(|| {
            vppn = (vppn * 2_654_435_761) % total;
            vppn_to_ppn(vppn, &g)
        })
    });
    let mut x = 999u64;
    c.bench_function("phys_addr_decompose", |b| {
        b.iter(|| {
            x = (x * 2_654_435_761) % total;
            PhysAddr::from_ppn(x, &g)
        })
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
