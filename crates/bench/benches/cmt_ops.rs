//! Criterion microbenchmarks for the cached-mapping-table structures that sit
//! on every FTL's read path.

use criterion::{criterion_group, criterion_main, Criterion};
use ftl_base::{EntryCmt, PageNodeCmt};

fn bench_entry_cmt(c: &mut Criterion) {
    let mut cmt = EntryCmt::new(4096);
    for lpn in 0..4096u64 {
        cmt.insert_clean(lpn, lpn * 7);
    }
    let mut probe = 1u64;
    c.bench_function("entry_cmt_lookup_hit", |b| {
        b.iter(|| {
            probe = (probe * 2_654_435_761) % 4096;
            cmt.lookup(probe)
        })
    });
    let mut next = 10_000u64;
    c.bench_function("entry_cmt_insert_evict", |b| {
        b.iter(|| {
            next += 1;
            cmt.insert_clean(next, next)
        })
    });
}

fn bench_page_node_cmt(c: &mut Criterion) {
    let mut cmt = PageNodeCmt::new(4096);
    for tpn in 0..8usize {
        let batch: Vec<(u32, u64, bool)> = (0..512u32)
            .map(|off| (off, u64::from(off) * 3, false))
            .collect();
        cmt.insert_batch(tpn, &batch);
    }
    let mut probe = 1u64;
    c.bench_function("page_node_cmt_lookup", |b| {
        b.iter(|| {
            probe = (probe * 2_654_435_761) % 4096;
            cmt.lookup((probe / 512) as usize, (probe % 512) as u32)
        })
    });
    c.bench_function("page_node_cmt_insert_batch_64", |b| {
        let batch: Vec<(u32, u64, bool)> =
            (0..64u32).map(|off| (off, u64::from(off), true)).collect();
        let mut tpn = 100usize;
        b.iter(|| {
            tpn += 1;
            cmt.insert_batch(tpn % 64, &batch)
        })
    });
}

criterion_group!(benches, bench_entry_cmt, bench_page_node_cmt);
criterion_main!(benches);
