//! Criterion microbenchmarks backing Fig. 15: the cost of sorting one GTD
//! entry's mappings, training its in-place-update model, updating it in place
//! from a sequential run, and making one prediction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use learned_index::Point;
use learnedftl::InPlaceModel;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

fn entry_points() -> Vec<Point> {
    // 512 LPNs mapped onto a few VPPN runs, as left behind by group GC.
    (0..512u64)
        .map(|i| Point::new(i, 2_000_000 + i + (i / 128) * 40_000))
        .collect()
}

fn bench_sorting(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut shuffled = entry_points();
    shuffled.shuffle(&mut rng);
    c.bench_function("gc_sort_512_mappings", |b| {
        b.iter_batched(
            || shuffled.clone(),
            |mut points| {
                points.sort_unstable_by_key(|p| p.key);
                points
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_training(c: &mut Criterion) {
    let points = entry_points();
    c.bench_function("train_in_place_model_512", |b| {
        b.iter(|| {
            let mut model = InPlaceModel::new(0, 512, 8);
            model.train(&points);
            model
        })
    });
}

fn bench_sequential_init(c: &mut Criterion) {
    let run: Vec<Point> = (100..228u64).map(|i| Point::new(i, 9_000 + i)).collect();
    c.bench_function("sequential_init_128_pages", |b| {
        b.iter_batched(
            || InPlaceModel::new(0, 512, 8),
            |mut model| {
                model.sequential_init(&run);
                model
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_prediction(c: &mut Criterion) {
    let points = entry_points();
    let mut model = InPlaceModel::new(0, 512, 8);
    model.train(&points);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("predict_one_lpn", |b| {
        b.iter(|| {
            let lpn = rng.gen_range(0..512);
            model.predict(lpn)
        })
    });
}

criterion_group!(
    benches,
    bench_sorting,
    bench_training,
    bench_sequential_init,
    bench_prediction
);
criterion_main!(benches);
