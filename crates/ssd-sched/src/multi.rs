//! Multi-issuer submission: a bank of serial issue paths over one host queue.
//!
//! A monolithic FTL driven through [`crate::QueuePair`] behaves as if its
//! translation path were infinitely parallel: every slot's request is handed
//! to the FTL the moment it issues, regardless of how many other requests the
//! FTL is already chewing on. Real FTL frontends are not like that — each
//! FTL instance runs on one embedded core and processes one request at a
//! time. [`MultiIssuer`] models exactly that resource: `issuers` independent
//! [`SerialEngine`]s (one per FTL shard), each busy from a request's issue
//! until its completion, with requests to the same engine queueing FIFO
//! behind it.
//!
//! The sharded FTL frontend (`ftl-shard`) owns a `MultiIssuer` with one
//! issuer per shard; the host queue depth stays where it was ([`crate::QueuePair`]
//! inside the experiment harness), so the two bounds compose: queue depth
//! limits how many requests the *host* keeps in flight, the issuer bank
//! limits how many the *device frontend* can translate concurrently.
//!
//! The bank is deliberately a thin wrapper: the thread-parallel backend
//! borrows the individual engines ([`MultiIssuer::engines_mut`]) and hands
//! each worker thread exclusive access to its shard's engine, so both
//! backends run the identical per-engine arithmetic.

use metrics::LatencyHistogram;
use ssd_sim::{Duration, SimTime};

use crate::engine::SerialEngine;

/// Per-issuer counters plus the engine-queueing distribution, synthesized
/// from the bank's [`SerialEngine`]s by [`MultiIssuer::stats`].
#[derive(Debug, Clone, Default)]
pub struct MultiIssuerStats {
    /// Requests dispatched through each issuer.
    pub dispatched: Vec<u64>,
    /// Simulated time each issuer spent busy (issue → completion).
    pub busy: Vec<Duration>,
    /// Time requests spent waiting for their issuer to come free
    /// (arrival → issue), across all issuers.
    pub waits: LatencyHistogram,
}

/// A bank of serial issue engines, keyed by issuer index.
///
/// ```
/// use ssd_sched::MultiIssuer;
/// use ssd_sim::{Duration, SimTime};
///
/// let mut bank = MultiIssuer::new(2);
/// let service = Duration::from_micros(40);
/// // Two requests on issuer 0 serialise; issuer 1 runs in parallel.
/// let (i0, c0) = bank.submit(0, SimTime::ZERO, |t| t + service);
/// let (i1, _) = bank.submit(0, SimTime::ZERO, |t| t + service);
/// let (i2, _) = bank.submit(1, SimTime::ZERO, |t| t + service);
/// assert_eq!(i0, SimTime::ZERO);
/// assert_eq!(i1, c0, "same issuer serialises");
/// assert_eq!(i2, SimTime::ZERO, "other issuer is free");
/// ```
#[derive(Debug, Clone)]
pub struct MultiIssuer {
    engines: Vec<SerialEngine>,
}

impl MultiIssuer {
    /// Creates a bank of `issuers` engines, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `issuers` is zero.
    pub fn new(issuers: usize) -> Self {
        assert!(issuers > 0, "need at least one issuer");
        MultiIssuer {
            engines: vec![SerialEngine::new(); issuers],
        }
    }

    /// Number of issue engines in the bank.
    pub fn issuers(&self) -> usize {
        self.engines.len()
    }

    /// The time `issuer` becomes free (equal to the completion time of its
    /// last dispatched request).
    ///
    /// # Panics
    ///
    /// Panics if `issuer` is out of range.
    pub fn free_at(&self, issuer: usize) -> SimTime {
        self.engines[issuer].free_at()
    }

    /// The time every issuer is free (the bank's quiesce point).
    pub fn drain_time(&self) -> SimTime {
        self.engines
            .iter()
            .map(SerialEngine::free_at)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Shared access to one engine.
    ///
    /// # Panics
    ///
    /// Panics if `issuer` is out of range.
    pub fn engine(&self, issuer: usize) -> &SerialEngine {
        &self.engines[issuer]
    }

    /// Exclusive access to one engine (the simulated backend dispatches
    /// through it via the [`crate::ShardEngine`] interface).
    ///
    /// # Panics
    ///
    /// Panics if `issuer` is out of range.
    pub fn engine_mut(&mut self, issuer: usize) -> &mut SerialEngine {
        &mut self.engines[issuer]
    }

    /// Exclusive access to every engine in the bank. The thread-parallel
    /// backend splits this slice and lends each worker thread its shard's
    /// engine, so per-engine state (busy-until, counters) evolves exactly as
    /// it would under [`MultiIssuer::submit`] on one thread.
    pub fn engines_mut(&mut self) -> &mut [SerialEngine] {
        &mut self.engines
    }

    /// Counters accumulated so far, aggregated across the bank. The `waits`
    /// histogram holds every engine's samples (per-engine recording order,
    /// engines concatenated), which is the same multiset a single-threaded
    /// interleaving records.
    pub fn stats(&self) -> MultiIssuerStats {
        let mut waits = LatencyHistogram::new();
        for engine in &self.engines {
            waits.merge(engine.waits());
        }
        MultiIssuerStats {
            dispatched: self.engines.iter().map(SerialEngine::dispatched).collect(),
            busy: self.engines.iter().map(SerialEngine::busy).collect(),
            waits,
        }
    }

    /// Resets the counters (dispatch counts, busy times, wait histograms)
    /// without touching the engines' busy-until times — the simulated
    /// timeline continues, only the measurement window restarts. Frontends
    /// reset this alongside their FTL statistics between experiment phases.
    pub fn reset_stats(&mut self) {
        for engine in &mut self.engines {
            engine.reset_stats();
        }
    }

    /// Dispatches a request arriving at `arrival` through `issuer`.
    ///
    /// The request issues when the engine is free (`max(arrival, free_at)`),
    /// `run` maps the issue time to the completion time (typically by driving
    /// an FTL shard), and the engine stays busy until that completion.
    /// Returns `(issue, completion)`.
    ///
    /// # Panics
    ///
    /// Panics if `issuer` is out of range or `run` returns a completion
    /// before the issue time.
    pub fn submit<F: FnOnce(SimTime) -> SimTime>(
        &mut self,
        issuer: usize,
        arrival: SimTime,
        run: F,
    ) -> (SimTime, SimTime) {
        self.engines[issuer].submit(arrival, run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVICE: Duration = Duration::from_micros(50);

    #[test]
    fn same_issuer_serialises_different_issuers_overlap() {
        let mut bank = MultiIssuer::new(4);
        let mut completions = Vec::new();
        for k in 0..8 {
            let (_, c) = bank.submit(k % 4, SimTime::ZERO, |t| t + SERVICE);
            completions.push(c);
        }
        // First four run concurrently, next four queue behind them.
        for c in &completions[..4] {
            assert_eq!(*c, SimTime::ZERO + SERVICE);
        }
        for c in &completions[4..] {
            assert_eq!(*c, SimTime::ZERO + SERVICE + SERVICE);
        }
        assert_eq!(bank.drain_time(), SimTime::ZERO + SERVICE + SERVICE);
    }

    #[test]
    fn waits_are_recorded_only_when_engine_is_busy() {
        let mut bank = MultiIssuer::new(1);
        bank.submit(0, SimTime::ZERO, |t| t + SERVICE);
        bank.submit(0, SimTime::ZERO, |t| t + SERVICE);
        assert_eq!(bank.stats().waits.count(), 2);
        assert_eq!(bank.stats().waits.max(), SERVICE);
        assert_eq!(bank.stats().dispatched, vec![2]);
        assert_eq!(bank.stats().busy[0], SERVICE + SERVICE);
    }

    #[test]
    fn reset_stats_keeps_the_timeline() {
        let mut bank = MultiIssuer::new(2);
        let (_, c) = bank.submit(0, SimTime::ZERO, |t| t + SERVICE);
        bank.reset_stats();
        assert_eq!(bank.stats().dispatched, vec![0, 0]);
        assert_eq!(bank.stats().waits.count(), 0);
        assert_eq!(bank.free_at(0), c, "busy-until survives the reset");
    }

    #[test]
    fn late_arrival_issues_immediately() {
        let mut bank = MultiIssuer::new(2);
        bank.submit(1, SimTime::ZERO, |t| t + SERVICE);
        let late = SimTime::from_millis(3);
        let (issue, _) = bank.submit(1, late, |t| t + SERVICE);
        assert_eq!(issue, late);
    }

    #[test]
    fn free_at_tracks_last_completion() {
        let mut bank = MultiIssuer::new(2);
        let (_, c) = bank.submit(0, SimTime::ZERO, |t| t + SERVICE);
        assert_eq!(bank.free_at(0), c);
        assert_eq!(bank.free_at(1), SimTime::ZERO);
    }

    #[test]
    fn stats_aggregate_across_engines() {
        let mut bank = MultiIssuer::new(2);
        bank.submit(0, SimTime::ZERO, |t| t + SERVICE);
        bank.submit(1, SimTime::ZERO, |t| t + SERVICE);
        bank.submit(1, SimTime::ZERO, |t| t + SERVICE);
        let stats = bank.stats();
        assert_eq!(stats.dispatched, vec![1, 2]);
        assert_eq!(stats.busy, vec![SERVICE, SERVICE + SERVICE]);
        assert_eq!(stats.waits.count(), 3);
        assert_eq!(bank.engine(1).dispatched(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one issuer")]
    fn zero_issuers_rejected() {
        MultiIssuer::new(0);
    }

    #[test]
    #[should_panic(expected = "completion must not precede issue")]
    fn time_travel_rejected() {
        let mut bank = MultiIssuer::new(1);
        bank.submit(0, SimTime::from_micros(10), |_| SimTime::ZERO);
    }
}
