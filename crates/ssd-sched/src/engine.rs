//! The serial translation engine: one FTL core's issue path.
//!
//! A [`SerialEngine`] models the resource every FTL shard runs on — one
//! embedded core that translates one request at a time. It is the unit both
//! execution backends share:
//!
//! * the *simulated* backend ([`crate::MultiIssuer`]) owns a bank of them and
//!   drives each from the single host thread,
//! * the *thread-parallel* backend (`ftl-shard`'s `run_threaded`) lends each
//!   worker thread exclusive `&mut` access to its shard's engine, so the
//!   worker replays exactly the arithmetic the simulated path would have
//!   performed — same `free_at` chaining, same per-engine counters — and the
//!   two backends produce bit-for-bit identical simulated timings.
//!
//! [`ShardEngine`] is the seam abstracting "something that serialises a
//! shard's requests onto a timeline": both backends dispatch through it
//! (`ftl-shard`'s simulated `run_segment` and its threaded worker loop), and
//! a future async runtime (tokio, io_uring) would implement the trait over
//! its own completion source without touching the sharding layer.

use metrics::LatencyHistogram;
use ssd_sim::{Duration, SimTime};

use crate::ring::{CompletionBatch, SubmissionBatch};

/// The interface a shard's issue path exposes to an execution backend: admit
/// a request that arrived at some simulated time, serialise it behind the
/// engine's previous work, and report `(issue, completion)`.
///
/// Implementations must be deterministic in simulated time: the completion
/// reported for a request may depend only on the engine's state and the
/// `run` closure, never on host wall-clock or scheduling.
pub trait ShardEngine {
    /// Dispatches a request arriving at `arrival`; `run` maps the issue time
    /// to the completion time (typically by driving an FTL shard). Returns
    /// `(issue, completion)`.
    fn dispatch(
        &mut self,
        arrival: SimTime,
        run: &mut dyn FnMut(SimTime) -> SimTime,
    ) -> (SimTime, SimTime);

    /// Dispatches a whole [`SubmissionBatch`] — the SQ ring window of one
    /// backend wakeup — appending one `(issue, completion)` pair per entry
    /// to `out`, in submission order.
    ///
    /// `run` maps `(batch index, issue time)` to the completion time; the
    /// index lets the backend recover which request a callback belongs to
    /// without the batch carrying payloads.
    ///
    /// The contract is *serial identity*: for every engine state and every
    /// batch, `dispatch_batch` must leave the engine in exactly the state N
    /// sequential [`ShardEngine::dispatch`] calls would, and report exactly
    /// their `(issue, completion)` pairs. The default implementation is that
    /// loop; implementations may only specialise the traversal (fewer
    /// virtual calls, ring-friendly layout), never the arithmetic.
    fn dispatch_batch(
        &mut self,
        batch: &SubmissionBatch,
        run: &mut dyn FnMut(usize, SimTime) -> SimTime,
        out: &mut CompletionBatch,
    ) {
        for (index, &arrival) in batch.arrivals().iter().enumerate() {
            let (issue, completion) = self.dispatch(arrival, &mut |t| run(index, t));
            out.push(issue, completion);
        }
    }

    /// The time the engine becomes free (the completion of its last
    /// dispatched request).
    fn free_at(&self) -> SimTime;
}

/// One serial issue engine: busy from each request's issue until its
/// completion, with requests queueing FIFO behind it.
///
/// ```
/// use ssd_sched::SerialEngine;
/// use ssd_sim::{Duration, SimTime};
///
/// let mut engine = SerialEngine::new();
/// let service = Duration::from_micros(40);
/// let (i0, c0) = engine.submit(SimTime::ZERO, |t| t + service);
/// let (i1, _) = engine.submit(SimTime::ZERO, |t| t + service);
/// assert_eq!(i0, SimTime::ZERO);
/// assert_eq!(i1, c0, "the engine serialises");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SerialEngine {
    free_at: SimTime,
    dispatched: u64,
    busy: Duration,
    waits: LatencyHistogram,
}

impl SerialEngine {
    /// Creates an engine that is free at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time this engine becomes free (equal to the completion time of
    /// its last dispatched request).
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Requests dispatched through this engine since the last stats reset.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Simulated time this engine spent busy (issue → completion) since the
    /// last stats reset.
    pub fn busy(&self) -> Duration {
        self.busy
    }

    /// Time requests spent waiting for this engine to come free
    /// (arrival → issue) since the last stats reset.
    pub fn waits(&self) -> &LatencyHistogram {
        &self.waits
    }

    /// Resets the counters without touching `free_at` — the simulated
    /// timeline continues, only the measurement window restarts.
    pub fn reset_stats(&mut self) {
        self.dispatched = 0;
        self.busy = Duration::ZERO;
        self.waits = LatencyHistogram::new();
    }

    /// Dispatches a request arriving at `arrival`.
    ///
    /// The request issues when the engine is free (`max(arrival, free_at)`),
    /// `run` maps the issue time to the completion time, and the engine
    /// stays busy until that completion. Returns `(issue, completion)`.
    ///
    /// # Panics
    ///
    /// Panics if `run` returns a completion before the issue time.
    pub fn submit<F: FnOnce(SimTime) -> SimTime>(
        &mut self,
        arrival: SimTime,
        run: F,
    ) -> (SimTime, SimTime) {
        let issue = arrival.max(self.free_at);
        let completion = run(issue);
        assert!(
            completion >= issue,
            "completion must not precede issue ({completion} < {issue})"
        );
        self.free_at = completion;
        self.dispatched += 1;
        self.busy += completion - issue;
        self.waits.record(issue - arrival);
        (issue, completion)
    }
}

impl ShardEngine for SerialEngine {
    fn dispatch(
        &mut self,
        arrival: SimTime,
        run: &mut dyn FnMut(SimTime) -> SimTime,
    ) -> (SimTime, SimTime) {
        self.submit(arrival, run)
    }

    /// Native ring pass: one traversal with the serialisation arithmetic
    /// inlined — bit-identical to the default per-entry loop (test-pinned),
    /// without the per-entry virtual `dispatch` hop.
    fn dispatch_batch(
        &mut self,
        batch: &SubmissionBatch,
        run: &mut dyn FnMut(usize, SimTime) -> SimTime,
        out: &mut CompletionBatch,
    ) {
        for (index, &arrival) in batch.arrivals().iter().enumerate() {
            let issue = arrival.max(self.free_at);
            let completion = run(index, issue);
            assert!(
                completion >= issue,
                "completion must not precede issue ({completion} < {issue})"
            );
            self.free_at = completion;
            self.dispatched += 1;
            self.busy += completion - issue;
            self.waits.record(issue - arrival);
            out.push(issue, completion);
        }
    }

    fn free_at(&self) -> SimTime {
        SerialEngine::free_at(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVICE: Duration = Duration::from_micros(50);

    #[test]
    fn engine_serialises_and_counts() {
        let mut e = SerialEngine::new();
        let (i0, c0) = e.submit(SimTime::ZERO, |t| t + SERVICE);
        assert_eq!(i0, SimTime::ZERO);
        let (i1, c1) = e.submit(SimTime::ZERO, |t| t + SERVICE);
        assert_eq!(i1, c0);
        assert_eq!(e.free_at(), c1);
        assert_eq!(e.dispatched(), 2);
        assert_eq!(e.busy(), SERVICE + SERVICE);
        assert_eq!(e.waits().count(), 2);
        assert_eq!(e.waits().max(), SERVICE);
    }

    #[test]
    fn reset_stats_keeps_the_timeline() {
        let mut e = SerialEngine::new();
        let (_, c) = e.submit(SimTime::ZERO, |t| t + SERVICE);
        e.reset_stats();
        assert_eq!(e.dispatched(), 0);
        assert_eq!(e.busy(), Duration::ZERO);
        assert_eq!(e.waits().count(), 0);
        assert_eq!(e.free_at(), c, "busy-until survives the reset");
    }

    #[test]
    fn trait_object_dispatch_matches_inherent_submit() {
        let mut a = SerialEngine::new();
        let mut b = SerialEngine::new();
        let direct = a.submit(SimTime::from_micros(3), |t| t + SERVICE);
        let via_trait = {
            let engine: &mut dyn ShardEngine = &mut b;
            engine.dispatch(SimTime::from_micros(3), &mut |t| t + SERVICE)
        };
        assert_eq!(direct, via_trait);
        assert_eq!(ShardEngine::free_at(&b), b.free_at);
    }

    #[test]
    #[should_panic(expected = "completion must not precede issue")]
    fn time_travel_rejected() {
        let mut e = SerialEngine::new();
        e.submit(SimTime::from_micros(10), |_| SimTime::ZERO);
    }

    #[test]
    fn batch_dispatch_equals_sequential_dispatch() {
        // Arrivals deliberately mix queueing (arrival < free_at) and idle
        // gaps (arrival > free_at); service depends on the batch index so a
        // mis-threaded index would surface as a timing difference.
        let arrivals = [0u64, 0, 5, 400, 120, 401]
            .into_iter()
            .map(SimTime::from_micros)
            .collect::<Vec<_>>();
        let service = |index: usize, t: SimTime| t + Duration::from_micros(10 + 7 * index as u64);

        let mut serial = SerialEngine::new();
        let expected: Vec<(SimTime, SimTime)> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| serial.submit(a, |t| service(i, t)))
            .collect();

        let mut batched = SerialEngine::new();
        let sq: SubmissionBatch = arrivals.iter().copied().collect();
        let mut cq = CompletionBatch::new();
        {
            let engine: &mut dyn ShardEngine = &mut batched;
            engine.dispatch_batch(&sq, &mut |i, t| service(i, t), &mut cq);
        }
        assert_eq!(cq.entries(), expected.as_slice());
        assert_eq!(batched.free_at(), serial.free_at());
        assert_eq!(batched.dispatched(), serial.dispatched());
        assert_eq!(batched.busy(), serial.busy());
        assert_eq!(batched.waits().mean(), serial.waits().mean());
        assert_eq!(batched.waits().max(), serial.waits().max());
    }

    /// A `ShardEngine` that only has the default `dispatch_batch`.
    struct DefaultBatcher(SerialEngine);

    impl ShardEngine for DefaultBatcher {
        fn dispatch(
            &mut self,
            arrival: SimTime,
            run: &mut dyn FnMut(SimTime) -> SimTime,
        ) -> (SimTime, SimTime) {
            self.0.submit(arrival, run)
        }
        fn free_at(&self) -> SimTime {
            self.0.free_at()
        }
    }

    #[test]
    fn native_batch_matches_default_loop_implementation() {
        let arrivals = [3u64, 3, 90, 15, 90]
            .into_iter()
            .map(SimTime::from_micros)
            .collect::<Vec<_>>();
        let sq: SubmissionBatch = arrivals.iter().copied().collect();
        let mut run = |i: usize, t: SimTime| t + Duration::from_micros(1 + i as u64);

        let mut native = SerialEngine::new();
        let mut native_cq = CompletionBatch::new();
        native.dispatch_batch(&sq, &mut run, &mut native_cq);

        let mut default = DefaultBatcher(SerialEngine::new());
        let mut default_cq = CompletionBatch::new();
        default.dispatch_batch(&sq, &mut run, &mut default_cq);

        assert_eq!(native_cq, default_cq);
        assert_eq!(native.free_at(), default.0.free_at());
        assert_eq!(native.busy(), default.0.busy());
    }
}
