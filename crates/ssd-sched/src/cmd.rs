//! Flash commands as the scheduler sees them: identity, payload, priority
//! class and the completion record handed back to the submitter.

use ssd_sim::{DeviceError, Duration, FlashOp, OobData, Ppn, SimTime};

use crate::tenant::TenantId;

/// Scheduler-assigned command identifier, unique for a scheduler's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmdId(pub u64);

impl std::fmt::Display for CmdId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cmd#{}", self.0)
    }
}

/// The arbitration class of a command.
///
/// Host traffic is latency-critical; garbage-collection traffic is bandwidth
/// work the FTL can defer. The scheduler lets GC yield to host commands on the
/// same chip, bounded by [`crate::SchedConfig::gc_starvation_bound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// A command serving a host request.
    Host,
    /// A command issued by garbage collection or other background work.
    Gc,
}

/// The operation a command performs, with its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CmdKind {
    /// Read one physical page.
    Read {
        /// The page to read.
        ppn: Ppn,
    },
    /// Program one physical page.
    Program {
        /// The page to program.
        ppn: Ppn,
        /// OOB metadata stored alongside the data.
        oob: OobData,
    },
    /// Erase one block (flat device-wide index).
    Erase {
        /// The block to erase.
        flat_block: u64,
    },
    /// Charge the flash *time* of an operation whose state effects were
    /// already applied under [`ssd_sim::FlashDevice::begin_staging`]. This is
    /// how scheduled garbage collection replays a staged collection's page
    /// reads, page programs and erases through the scheduler's GC priority
    /// class: the command occupies the recorded chip (and channel) for the
    /// operation's latency but touches no page state.
    Charge {
        /// The NAND operation whose timing is charged.
        op: FlashOp,
        /// Flat index of the chip the operation occupies.
        chip: u64,
        /// Channel the operation's data crosses.
        channel: u32,
        /// Bitmask of the planes the operation occupies (one bit for
        /// single-plane operations, several for a fused multi-plane group).
        planes: u32,
    },
}

impl CmdKind {
    /// The charge command replaying `staged`'s timing.
    pub fn charge(staged: ssd_sim::StagedOp) -> Self {
        CmdKind::Charge {
            op: staged.op,
            chip: staged.chip,
            channel: staged.channel,
            planes: staged.planes,
        }
    }
}

/// A command waiting in (or moving through) the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Command {
    /// Scheduler-assigned identity.
    pub id: CmdId,
    /// Operation and target.
    pub kind: CmdKind,
    /// Arbitration class.
    pub priority: Priority,
    /// The tenant the command serves (tenant 0 for single-tenant
    /// submitters; ignored for [`Priority::Gc`] commands, which always land
    /// in the GC arbitration class).
    pub tenant: TenantId,
    /// When the submitter handed the command to the scheduler.
    pub submitted: SimTime,
}

/// The completion record for one command: what ran, where, and the three
/// timestamps the tail-latency analysis needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The command's identity.
    pub id: CmdId,
    /// Operation and target, echoed back.
    pub kind: CmdKind,
    /// Arbitration class, echoed back.
    pub priority: Priority,
    /// The tenant the command served, echoed back.
    pub tenant: TenantId,
    /// Flat index of the chip that executed the command.
    pub chip: u64,
    /// When the command entered the scheduler.
    pub submitted: SimTime,
    /// When the scheduler issued the command to the device.
    pub issued: SimTime,
    /// When the device completed the command. Equals `issued` when `error`
    /// is set (the device rejected the command without executing it).
    pub completed: SimTime,
    /// The device's rejection, if the command failed validation.
    pub error: Option<DeviceError>,
}

impl Completion {
    /// Time spent queued in the scheduler before reaching the device.
    pub fn queueing(&self) -> Duration {
        self.issued - self.submitted
    }

    /// Time spent in the device (NAND operation plus channel transfer plus
    /// chip-level serialisation).
    pub fn service(&self) -> Duration {
        self.completed - self.issued
    }

    /// End-to-end latency: submission to completion.
    pub fn total(&self) -> Duration {
        self.completed - self.submitted
    }

    /// Whether the command executed successfully.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_latency_decomposes() {
        let c = Completion {
            id: CmdId(3),
            kind: CmdKind::Read { ppn: 7 },
            priority: Priority::Host,
            tenant: TenantId(0),
            chip: 1,
            submitted: SimTime::from_micros(10),
            issued: SimTime::from_micros(25),
            completed: SimTime::from_micros(70),
            error: None,
        };
        assert_eq!(c.queueing(), Duration::from_micros(15));
        assert_eq!(c.service(), Duration::from_micros(45));
        assert_eq!(c.total(), Duration::from_micros(60));
        assert!(c.is_ok());
        assert_eq!(c.id.to_string(), "cmd#3");
    }
}
