//! The discrete-event core: a binary-heap priority queue over [`SimTime`].
//!
//! Events at equal times pop in insertion order (a monotone sequence number
//! breaks ties), so the event loop is fully deterministic.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ssd_sim::SimTime;

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// ```
/// use ssd_sched::EventQueue;
/// use ssd_sim::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(40), "late");
/// q.schedule(SimTime::from_micros(10), "early");
/// q.schedule(SimTime::from_micros(10), "early-but-second");
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "early-but-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(40), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), 'b');
        q.schedule(SimTime::from_nanos(1), 'a');
        q.schedule(SimTime::from_nanos(5), 'c');
        q.schedule(SimTime::ZERO, 'z');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['z', 'a', 'b', 'c']);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
    }
}
