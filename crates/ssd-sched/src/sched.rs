//! The event-driven multi-queue I/O scheduler.
//!
//! [`IoScheduler`] sits between command submitters (an FTL's host path and
//! its garbage collector) and a [`FlashDevice`]. Commands are queued per
//! chip, issued through the device's enqueue/poll interface, and completed
//! out of order through a binary-heap event loop on [`SimTime`]. Dispatch is
//! **plane-aware**: a chip is issuable whenever any of its planes is free,
//! and each queue is drained in per-plane FIFO order — a command may only
//! bypass earlier queued commands of its class that target *other* planes
//! (the die-interleave conflict rule: same-plane commands never reorder,
//! cross-plane commands overlap).
//!
//! Arbitration between queues is the weighted per-tenant scheme of
//! [`TenantPolicy`]: host tenant classes share contended slots by weighted
//! round-robin, background classes (weight 0) run only on idle slots, and
//! every class has a starvation bound that forces its candidate through. The
//! default policy is [`TenantPolicy::two_class`] — host commands take
//! priority over GC commands on the same chip, but a GC command is never
//! bypassed more than [`SchedConfig::gc_starvation_bound`] times in a row —
//! which reproduces the historical two-class scheduler bit for bit.

use std::collections::VecDeque;

use metrics::LatencyHistogram;
use ssd_sim::{FlashDevice, FlashOp, Geometry, PhysAddr, SimTime, TraceData, TraceSink};

use crate::cmd::{CmdId, CmdKind, Command, Completion, Priority};
use crate::event::EventQueue;
use crate::tenant::{TenantArbiter, TenantId, TenantPolicy};

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Maximum number of commands outstanding in the scheduler (queued plus
    /// issued, not yet completed). Submission fails once the bound is hit.
    pub queue_depth: usize,
    /// How many times in a row a queued GC command may be bypassed by host
    /// commands on the same chip before it is forced through.
    pub gc_starvation_bound: u32,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            queue_depth: 64,
            gc_starvation_bound: 4,
        }
    }
}

impl SchedConfig {
    /// A configuration with the given queue depth and default arbitration.
    pub fn with_queue_depth(queue_depth: usize) -> Self {
        SchedConfig {
            queue_depth,
            ..Self::default()
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedError {
    /// The scheduler already holds `queue_depth` outstanding commands.
    QueueFull {
        /// The configured bound that was hit.
        queue_depth: usize,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::QueueFull { queue_depth } => {
                write!(f, "submission queue full (depth {queue_depth})")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Counters and latency distributions accumulated by a scheduler.
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    /// Commands accepted by [`IoScheduler::submit`].
    pub submitted: u64,
    /// Commands completed (including device rejections).
    pub completed: u64,
    /// Commands the device rejected.
    pub errors: u64,
    /// Times a GC command was bypassed in favour of a host command.
    pub gc_yields: u64,
    /// Times a GC command was forced through by the starvation bound.
    pub gc_forced: u64,
    /// Scheduler queueing delay per completed command.
    pub queueing: LatencyHistogram,
    /// Device service time per completed command.
    pub service: LatencyHistogram,
}

/// Per-arbitration-class counters of one scheduler (indexed like the
/// policy's classes: host classes first, the GC class last).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Commands submitted to this class.
    pub submitted: u64,
    /// Commands of this class completed.
    pub completed: u64,
    /// Contended arbitration slots this class lost.
    pub yields: u64,
    /// Slots this class won through its starvation bound.
    pub forced: u64,
}

#[derive(Debug, Clone)]
struct ChipQueue {
    /// One FIFO per arbitration class, indexed like the policy's classes.
    queues: Vec<VecDeque<Command>>,
    /// Weighted-round-robin / starvation state for this chip's classes.
    arbiter: TenantArbiter,
    /// Bitmask of planes with a command currently issued to the device.
    busy_planes: u32,
    /// Earliest pending wakeup for this chip, to suppress duplicate events.
    wakeup_at: Option<SimTime>,
}

impl ChipQueue {
    fn new(policy: &TenantPolicy) -> Self {
        ChipQueue {
            queues: (0..policy.num_classes()).map(|_| VecDeque::new()).collect(),
            arbiter: TenantArbiter::new(policy),
            busy_planes: 0,
            wakeup_at: None,
        }
    }

    fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

#[derive(Debug, Clone)]
enum Event {
    /// The command issued on `chip` completes; its record is pre-computed.
    Complete { chip: usize, completion: Completion },
    /// Re-run dispatch on `chip`: a queued command's submission time has
    /// been reached.
    Wakeup { chip: usize },
}

/// The event-driven multi-queue scheduler over one [`FlashDevice`].
///
/// ```
/// use ssd_sched::{CmdKind, IoScheduler, Priority, SchedConfig};
/// use ssd_sim::{FlashDevice, OobData, SimTime, SsdConfig};
///
/// let mut dev = FlashDevice::new(SsdConfig::tiny());
/// let mut sched = IoScheduler::new(*dev.geometry(), SchedConfig::default());
/// sched
///     .submit(CmdKind::Program { ppn: 0, oob: OobData::mapped(7) }, Priority::Host, SimTime::ZERO)
///     .unwrap();
/// let end = sched.drain(&mut dev);
/// let done = sched.pop_completions();
/// assert_eq!(done.len(), 1);
/// assert!(done[0].is_ok());
/// assert_eq!(done[0].completed, end);
/// ```
#[derive(Debug, Clone)]
pub struct IoScheduler {
    config: SchedConfig,
    policy: TenantPolicy,
    geometry: Geometry,
    /// Bitmask with one bit per plane of a chip (all chips are alike).
    all_planes: u32,
    now: SimTime,
    chips: Vec<ChipQueue>,
    events: EventQueue<Event>,
    completions: Vec<Completion>,
    outstanding: usize,
    next_id: u64,
    stats: SchedStats,
    class_stats: Vec<ClassStats>,
}

impl IoScheduler {
    /// Creates a scheduler for a device with the given geometry, using the
    /// degenerate two-class (Host/GC) tenant policy derived from
    /// [`SchedConfig::gc_starvation_bound`].
    pub fn new(geometry: Geometry, config: SchedConfig) -> Self {
        Self::with_tenants(
            geometry,
            config,
            TenantPolicy::two_class(config.gc_starvation_bound),
        )
    }

    /// Creates a scheduler with an explicit weighted tenant policy. The
    /// policy's last class serves [`Priority::Gc`] commands; host commands
    /// map to classes by their [`TenantId`].
    pub fn with_tenants(geometry: Geometry, config: SchedConfig, policy: TenantPolicy) -> Self {
        assert!(config.queue_depth > 0, "queue depth must be at least 1");
        let all_planes = if geometry.planes_per_chip >= 32 {
            u32::MAX
        } else {
            (1u32 << geometry.planes_per_chip) - 1
        };
        IoScheduler {
            config,
            geometry,
            all_planes,
            now: SimTime::ZERO,
            chips: (0..geometry.total_chips())
                .map(|_| ChipQueue::new(&policy))
                .collect(),
            events: EventQueue::new(),
            completions: Vec::new(),
            outstanding: 0,
            next_id: 0,
            stats: SchedStats::default(),
            class_stats: vec![ClassStats::default(); policy.num_classes()],
            policy,
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// The scheduler's tenant policy.
    pub fn policy(&self) -> &TenantPolicy {
        &self.policy
    }

    /// Per-class counters, indexed like [`TenantPolicy::classes`].
    pub fn class_stats(&self) -> &[ClassStats] {
        &self.class_stats
    }

    /// The current simulated time of the event loop.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Commands submitted but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Submits a command at time `submitted`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::QueueFull`] when `queue_depth` commands are
    /// already outstanding; the caller must run the event loop (e.g.
    /// [`IoScheduler::run_until`]) to drain completions first.
    pub fn submit(
        &mut self,
        kind: CmdKind,
        priority: Priority,
        submitted: SimTime,
    ) -> Result<CmdId, SchedError> {
        self.submit_for_tenant(kind, priority, TenantId(0), submitted)
    }

    /// Submits a command on behalf of a tenant at time `submitted`. The
    /// command queues in the tenant's arbitration class
    /// ([`TenantPolicy::host_class_of`]) — or in the GC class regardless of
    /// tenant for [`Priority::Gc`].
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::QueueFull`] when `queue_depth` commands are
    /// already outstanding, like [`IoScheduler::submit`].
    pub fn submit_for_tenant(
        &mut self,
        kind: CmdKind,
        priority: Priority,
        tenant: TenantId,
        submitted: SimTime,
    ) -> Result<CmdId, SchedError> {
        if self.outstanding >= self.config.queue_depth {
            return Err(SchedError::QueueFull {
                queue_depth: self.config.queue_depth,
            });
        }
        let id = CmdId(self.next_id);
        self.next_id += 1;
        let chip = self.target_chip(&kind);
        let class = self.class_of(priority, tenant);
        let cmd = Command {
            id,
            kind,
            priority,
            tenant,
            submitted,
        };
        self.chips[chip].queues[class].push_back(cmd);
        self.outstanding += 1;
        self.stats.submitted += 1;
        self.class_stats[class].submitted += 1;
        Ok(id)
    }

    /// The arbitration class a command lands in.
    fn class_of(&self, priority: Priority, tenant: TenantId) -> usize {
        match priority {
            Priority::Host => self.policy.host_class_of(tenant),
            Priority::Gc => self.policy.gc_class(),
        }
    }

    /// Runs the event loop until every event at or before `until` has fired.
    /// Returns the new simulated time (`>= until` only if nothing remains to
    /// do earlier).
    pub fn run_until(&mut self, dev: &mut FlashDevice, until: SimTime) -> SimTime {
        // New commands may have been submitted since the last run: give every
        // idle chip one dispatch pass, then advance purely event by event
        // (each event re-dispatches only the chip it names).
        self.dispatch_idle_chips(dev);
        while let Some(t) = self.events.peek_time() {
            if t > until {
                break;
            }
            let (t, event) = self.events.pop().expect("peeked event exists");
            self.now = self.now.max(t);
            self.handle(event, dev);
        }
        self.now = self.now.max(until);
        // The scheduler owns the completion records, so reap the device's
        // in-flight set as we go — otherwise it would grow for the device's
        // lifetime and confuse any other consumer of its poll interface.
        dev.poll_completions(self.now);
        self.now
    }

    /// Runs the event loop to quiescence: every submitted command completes.
    /// Returns the completion time of the last command (or the current time
    /// when the scheduler was already idle).
    pub fn drain(&mut self, dev: &mut FlashDevice) -> SimTime {
        self.dispatch_idle_chips(dev);
        while let Some((t, event)) = self.events.pop() {
            self.now = self.now.max(t);
            self.handle(event, dev);
        }
        debug_assert_eq!(self.outstanding, 0, "drain must complete every command");
        // See run_until: the device's in-flight records are ours to reap.
        dev.poll_completions(self.now);
        self.now
    }

    /// Runs the event loop until the command with `id` completes and returns
    /// its completion record. Other commands completing earlier stay in the
    /// completion buffer for [`IoScheduler::pop_completions`].
    ///
    /// This is the synchronous-submitter bridge: an FTL whose host path wants
    /// a plain completion *time* submits one command, then drives the event
    /// loop exactly far enough — pending GC-class commands dispatch and
    /// contend along the way.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never submitted (or already reaped): the event loop
    /// would run dry without observing it.
    pub fn run_until_complete(&mut self, dev: &mut FlashDevice, id: CmdId) -> Completion {
        self.dispatch_idle_chips(dev);
        // Only completions recorded since the last scan can match, so each
        // buffer entry is examined once even when a long GC backlog drains
        // ahead of the awaited command.
        let mut scanned = 0;
        loop {
            if let Some(c) = self.completions[scanned..].iter().find(|c| c.id == id) {
                // The scheduler owns the completion records; reap the device's
                // in-flight set as run_until/drain do.
                dev.poll_completions(self.now);
                return *c;
            }
            scanned = self.completions.len();
            let Some((t, event)) = self.events.pop() else {
                panic!("{id} never completes: was it submitted to this scheduler?");
            };
            self.now = self.now.max(t);
            self.handle(event, dev);
        }
    }

    /// Takes every completion recorded since the last call, in completion
    /// order.
    pub fn pop_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    fn handle(&mut self, event: Event, dev: &mut FlashDevice) {
        match event {
            Event::Complete { chip, completion } => {
                let planes = self.target_planes(&completion.kind);
                self.chips[chip].busy_planes &= !planes;
                self.outstanding -= 1;
                self.stats.completed += 1;
                let class = self.class_of(completion.priority, completion.tenant);
                self.class_stats[class].completed += 1;
                if completion.error.is_some() {
                    // Rejected commands took no device time: keep their
                    // zero-duration samples out of the latency distributions.
                    self.stats.errors += 1;
                } else {
                    self.stats.queueing.record(completion.queueing());
                    self.stats.service.record(completion.service());
                }
                if let Some(t) = dev.trace_sink() {
                    // One lifecycle span per command, emitted at completion so
                    // it carries the full submit→issue→complete record.
                    t.span(
                        completion.submitted,
                        completion.completed,
                        TraceData::CmdLifecycle {
                            chip: chip as u32,
                            op: Self::op_of(&completion.kind),
                            gc: completion.priority == Priority::Gc,
                            issued: completion.issued,
                        },
                    );
                    let gc_class = self.policy.gc_class();
                    t.counter(
                        completion.completed,
                        TraceData::QueueDepth {
                            chip: chip as u32,
                            host: self.chips[chip].queues[..gc_class]
                                .iter()
                                .map(VecDeque::len)
                                .sum::<usize>() as u32,
                            gc: self.chips[chip].queues[gc_class].len() as u32,
                        },
                    );
                }
                self.completions.push(completion);
                self.dispatch_chip(chip, dev);
            }
            Event::Wakeup { chip } => {
                self.chips[chip].wakeup_at = None;
                self.dispatch_chip(chip, dev);
            }
        }
    }

    /// Issues at most one command per idle chip, honouring arbitration.
    fn dispatch_idle_chips(&mut self, dev: &mut FlashDevice) {
        for chip_idx in 0..self.chips.len() {
            self.dispatch_chip(chip_idx, dev);
        }
    }

    /// The first command of `queue` that is submittable at `now` and whose
    /// planes are all free, honouring per-plane FIFO order: a command may
    /// only bypass earlier queued commands that target disjoint planes
    /// (commands on the same plane never reorder).
    fn queue_candidate(&self, queue: &VecDeque<Command>, now: SimTime, free: u32) -> Option<usize> {
        let mut blocked = 0u32;
        for (i, cmd) in queue.iter().enumerate() {
            let planes = self.target_planes(&cmd.kind);
            if cmd.submitted <= now && planes & !free == 0 && planes & blocked == 0 {
                return Some(i);
            }
            blocked |= planes;
            if blocked & free == free {
                return None;
            }
        }
        None
    }

    /// Issues as many commands as the chip's free planes allow, honouring
    /// arbitration per issue slot.
    fn dispatch_chip(&mut self, chip_idx: usize, dev: &mut FlashDevice) {
        let gc_class = self.policy.gc_class();
        // Per-class (queue index, plane mask) of the slot's candidates, and
        // the classes that lost it; both reused across loop iterations.
        let mut candidates: Vec<Option<(usize, u32)>> = Vec::new();
        let mut yielded: Vec<usize> = Vec::new();
        loop {
            let now = self.now;
            let free = self.all_planes & !self.chips[chip_idx].busy_planes;
            if free == 0 || self.chips[chip_idx].is_empty() {
                return;
            }
            candidates.clear();
            for queue in &self.chips[chip_idx].queues {
                candidates.push(
                    self.queue_candidate(queue, now, free)
                        .map(|i| (i, self.target_planes(&queue[i].kind))),
                );
            }
            let decision = self.chips[chip_idx].arbiter.decide(
                |c| candidates[c].is_some(),
                |a, b| {
                    // Candidates on disjoint planes do not delay each other:
                    // the loser issues on the next loop iteration at the same
                    // simulated time, so no yield is recorded and no
                    // starvation counter moves.
                    let (_, pa) = candidates[a].expect("present candidate");
                    let (_, pb) = candidates[b].expect("present candidate");
                    pa & pb != 0
                },
                &mut yielded,
            );
            let Some(arb) = decision else {
                // Commands are queued but none is issuable yet: wake up
                // when the earliest one becomes eligible (a plane-blocked
                // command re-dispatches on its blocker's completion
                // instead).
                self.schedule_wakeup(chip_idx);
                return;
            };
            for &c in &yielded {
                self.class_stats[c].yields += 1;
                if c == gc_class {
                    self.stats.gc_yields += 1;
                    if let Some(t) = dev.trace_sink() {
                        t.instant(
                            now,
                            TraceData::GcYield {
                                chip: chip_idx as u32,
                            },
                        );
                    }
                }
            }
            if arb.forced {
                self.class_stats[arb.winner].forced += 1;
                if arb.winner == gc_class {
                    self.stats.gc_forced += 1;
                    if let Some(t) = dev.trace_sink() {
                        t.instant(
                            now,
                            TraceData::GcForced {
                                chip: chip_idx as u32,
                            },
                        );
                    }
                }
            }
            let (queue_idx, planes) = candidates[arb.winner].expect("winner has a candidate");
            let cmd = self.chips[chip_idx].queues[arb.winner]
                .remove(queue_idx)
                .expect("winner candidate exists");
            self.chips[chip_idx].busy_planes |= planes;
            let issue = now.max(cmd.submitted);
            let (completed, error) = match cmd.kind {
                CmdKind::Read { ppn } => match dev.enqueue_read(ppn, issue) {
                    Ok(q) => (q.completes_at, None),
                    Err(e) => (issue, Some(e)),
                },
                CmdKind::Program { ppn, oob } => match dev.enqueue_program(ppn, oob, issue) {
                    Ok(q) => (q.completes_at, None),
                    Err(e) => (issue, Some(e)),
                },
                CmdKind::Erase { flat_block } => match dev.enqueue_erase(flat_block, issue) {
                    Ok(q) => (q.completes_at, None),
                    Err(e) => (issue, Some(e)),
                },
                // Timing replay of a staged operation: state was applied when
                // the op was staged, so charging can never be rejected.
                CmdKind::Charge {
                    op,
                    chip,
                    channel,
                    planes,
                } => (dev.charge_op(op, chip, channel, planes, issue), None),
            };
            let completion = Completion {
                id: cmd.id,
                kind: cmd.kind,
                priority: cmd.priority,
                tenant: cmd.tenant,
                chip: chip_idx as u64,
                submitted: cmd.submitted,
                issued: issue,
                completed,
                error,
            };
            self.events.schedule(
                completed,
                Event::Complete {
                    chip: chip_idx,
                    completion,
                },
            );
        }
    }

    fn schedule_wakeup(&mut self, chip_idx: usize) {
        let now = self.now;
        let chip = &self.chips[chip_idx];
        // With plane-aware dispatch the next issuable command need not be a
        // queue head (a head can be plane-blocked while a later command's
        // submit time approaches), so consider every queued command. Commands
        // already submittable need no wakeup: they dispatch when a plane
        // frees (the blocker's completion re-dispatches the chip).
        let earliest = chip
            .queues
            .iter()
            .flatten()
            .map(|c| c.submitted)
            .filter(|&t| t > now)
            .min();
        if let Some(t) = earliest {
            // Skip if an equal-or-earlier wakeup for this chip is already
            // pending (a superseded later one fires as a harmless no-op).
            if self.chips[chip_idx].wakeup_at.is_none_or(|w| t < w) {
                self.chips[chip_idx].wakeup_at = Some(t);
                self.events.schedule(t, Event::Wakeup { chip: chip_idx });
            }
        }
    }

    /// The flash operation a command performs (a charge replays the staged
    /// operation it carries).
    fn op_of(kind: &CmdKind) -> FlashOp {
        match kind {
            CmdKind::Read { .. } => FlashOp::Read,
            CmdKind::Program { .. } => FlashOp::Program,
            CmdKind::Erase { .. } => FlashOp::Erase,
            CmdKind::Charge { op, .. } => *op,
        }
    }

    fn target_chip(&self, kind: &CmdKind) -> usize {
        let g = &self.geometry;
        match kind {
            CmdKind::Read { ppn } | CmdKind::Program { ppn, .. } => {
                PhysAddr::from_ppn(*ppn, g).chip_index(g) as usize
            }
            CmdKind::Erase { flat_block } => (flat_block / g.blocks_per_chip()) as usize,
            CmdKind::Charge { chip, .. } => *chip as usize,
        }
    }

    /// The bitmask of planes a command occupies on its chip.
    fn target_planes(&self, kind: &CmdKind) -> u32 {
        let g = &self.geometry;
        match kind {
            CmdKind::Read { ppn } | CmdKind::Program { ppn, .. } => {
                1 << PhysAddr::from_ppn(*ppn, g).plane
            }
            CmdKind::Erase { flat_block } => {
                1 << ((flat_block % g.blocks_per_chip()) / u64::from(g.blocks_per_plane))
            }
            CmdKind::Charge { planes, .. } => *planes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::{CmdKind, Priority};
    use crate::tenant::TenantClass;
    use ssd_sim::{OobData, SsdConfig};

    fn setup() -> (FlashDevice, IoScheduler) {
        let dev = FlashDevice::new(SsdConfig::tiny());
        let sched = IoScheduler::new(*dev.geometry(), SchedConfig::default());
        (dev, sched)
    }

    /// Programs the first `n` pages of chip 0's block 0 so reads have targets.
    fn populate(dev: &mut FlashDevice, n: u64) -> SimTime {
        let mut t = SimTime::ZERO;
        for ppn in 0..n {
            t = dev.program_page(ppn, OobData::mapped(ppn), t).unwrap();
        }
        t
    }

    #[test]
    fn commands_complete_out_of_order_across_chips() {
        let (mut dev, mut sched) = setup();
        let g = *dev.geometry();
        // Put readable data on chip 1 up front.
        let chip1_ppn = g.pages_per_chip();
        dev.program_page(chip1_ppn, OobData::mapped(1), SimTime::ZERO)
            .unwrap();
        let t0 = dev.drain_time();
        // Submit a slow program (200us) on chip 0 first, then a fast read
        // (~40us) on chip 1: the read must complete first.
        sched
            .submit(
                CmdKind::Program {
                    ppn: 0,
                    oob: OobData::mapped(9),
                },
                Priority::Host,
                t0,
            )
            .unwrap();
        sched
            .submit(CmdKind::Read { ppn: chip1_ppn }, Priority::Host, t0)
            .unwrap();
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(Completion::is_ok));
        let ids: Vec<u64> = done.iter().map(|c| c.id.0).collect();
        assert_eq!(
            ids,
            vec![1, 0],
            "the fast chip-1 read must complete before the slow program"
        );
        // Delivery is in completion-time order.
        assert!(done.windows(2).all(|w| w[0].completed <= w[1].completed));
    }

    #[test]
    fn same_chip_commands_serialise_and_record_queueing() {
        let (mut dev, mut sched) = setup();
        let t0 = populate(&mut dev, 2);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, t0)
            .unwrap();
        sched
            .submit(CmdKind::Read { ppn: 1 }, Priority::Host, t0)
            .unwrap();
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].queueing(), ssd_sim::Duration::ZERO);
        assert!(
            done[1].queueing() > ssd_sim::Duration::ZERO,
            "second command on the same chip must record queueing delay"
        );
        assert!(done[1].completed > done[0].completed);
    }

    #[test]
    fn gc_yields_to_host_until_starvation_bound() {
        let mut dev = FlashDevice::new(SsdConfig::tiny());
        let bound = 2;
        let mut sched = IoScheduler::new(
            *dev.geometry(),
            SchedConfig {
                queue_depth: 64,
                gc_starvation_bound: bound,
            },
        );
        let t0 = populate(&mut dev, 8);
        // One GC read and a stream of host reads, all on chip 0, all at t0.
        sched
            .submit(CmdKind::Read { ppn: 7 }, Priority::Gc, t0)
            .unwrap();
        for ppn in 0..6 {
            sched
                .submit(CmdKind::Read { ppn }, Priority::Host, t0)
                .unwrap();
        }
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        let gc_pos = done
            .iter()
            .position(|c| c.priority == Priority::Gc)
            .unwrap();
        assert_eq!(
            gc_pos, bound as usize,
            "GC must run after exactly `bound` host bypasses, ran at {gc_pos}"
        );
        assert_eq!(sched.stats().gc_yields, u64::from(bound));
        assert_eq!(sched.stats().gc_forced, 1);
    }

    #[test]
    fn gc_runs_immediately_on_idle_chips() {
        let (mut dev, mut sched) = setup();
        let t0 = populate(&mut dev, 1);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Gc, t0)
            .unwrap();
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].queueing(), ssd_sim::Duration::ZERO);
        assert_eq!(sched.stats().gc_yields, 0);
    }

    #[test]
    fn queue_depth_bounds_outstanding_commands() {
        let mut dev = FlashDevice::new(SsdConfig::tiny());
        let mut sched = IoScheduler::new(*dev.geometry(), SchedConfig::with_queue_depth(2));
        populate(&mut dev, 4);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, SimTime::ZERO)
            .unwrap();
        sched
            .submit(CmdKind::Read { ppn: 1 }, Priority::Host, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            sched.submit(CmdKind::Read { ppn: 2 }, Priority::Host, SimTime::ZERO),
            Err(SchedError::QueueFull { queue_depth: 2 })
        );
        // Draining frees the slots.
        sched.drain(&mut dev);
        assert_eq!(sched.outstanding(), 0);
        sched
            .submit(CmdKind::Read { ppn: 2 }, Priority::Host, sched.now())
            .unwrap();
        sched.drain(&mut dev);
        assert_eq!(sched.pop_completions().len(), 3);
    }

    #[test]
    fn device_rejections_surface_as_error_completions() {
        let (mut dev, mut sched) = setup();
        // Read of a never-programmed page.
        sched
            .submit(CmdKind::Read { ppn: 3 }, Priority::Host, SimTime::ZERO)
            .unwrap();
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 1);
        assert!(!done[0].is_ok());
        assert_eq!(sched.stats().errors, 1);
        assert_eq!(
            done[0].completed, done[0].issued,
            "rejected commands take no device time"
        );
    }

    #[test]
    fn future_submissions_wait_for_their_submit_time() {
        let (mut dev, mut sched) = setup();
        populate(&mut dev, 1);
        let t0 = dev.drain_time();
        let late = t0 + ssd_sim::Duration::from_millis(5);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, late)
            .unwrap();
        let end = sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(
            done[0].issued, late,
            "command must not issue before its submit time"
        );
        assert!(end > late);
    }

    #[test]
    fn run_until_only_fires_events_in_window() {
        let (mut dev, mut sched) = setup();
        let t0 = populate(&mut dev, 2);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, t0)
            .unwrap();
        sched
            .submit(CmdKind::Read { ppn: 1 }, Priority::Host, t0)
            .unwrap();
        // One read takes ~40us NAND + transfers; cut the window mid-way.
        let mid = t0 + ssd_sim::Duration::from_micros(60);
        sched.run_until(&mut dev, mid);
        let first_batch = sched.pop_completions();
        assert_eq!(first_batch.len(), 1, "only the first read fits the window");
        assert_eq!(sched.outstanding(), 1);
        sched.drain(&mut dev);
        assert_eq!(sched.pop_completions().len(), 1);
    }

    #[test]
    fn scheduler_reaps_device_in_flight_records() {
        let (mut dev, mut sched) = setup();
        let t0 = populate(&mut dev, 4);
        for ppn in 0..4 {
            sched
                .submit(CmdKind::Read { ppn }, Priority::Host, t0)
                .unwrap();
        }
        sched.drain(&mut dev);
        assert_eq!(
            dev.in_flight_commands(),
            0,
            "drain must reap the device's completion records"
        );
        assert_eq!(dev.next_completion_time(), None);
    }

    #[test]
    fn charge_commands_occupy_chips_without_state() {
        let (mut dev, mut sched) = setup();
        let t0 = populate(&mut dev, 1);
        // Stage a read's state, then charge its time through the scheduler.
        dev.begin_staging();
        dev.read_page(0, t0).unwrap();
        let ops = dev.end_staging();
        assert_eq!(ops.len(), 1);
        let reads_before = dev.stats().reads;
        sched
            .submit(CmdKind::charge(ops[0]), Priority::Gc, t0)
            .unwrap();
        let end = sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 1);
        assert!(done[0].is_ok());
        assert!(end > t0, "the charge must consume flash time");
        assert_eq!(
            dev.stats().reads,
            reads_before,
            "charging must not re-count the staged operation"
        );
    }

    #[test]
    fn run_until_complete_returns_the_requested_completion() {
        let (mut dev, mut sched) = setup();
        let t0 = populate(&mut dev, 4);
        // Queue two GC charges ahead of a host read on the same chip.
        dev.begin_staging();
        dev.read_page(2, t0).unwrap();
        dev.read_page(3, t0).unwrap();
        let ops = dev.end_staging();
        for &op in &ops {
            sched.submit(CmdKind::charge(op), Priority::Gc, t0).unwrap();
        }
        let host = sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, t0)
            .unwrap();
        let completion = sched.run_until_complete(&mut dev, host);
        assert_eq!(completion.id, host);
        assert!(completion.is_ok());
        assert!(completion.completed > t0);
        // The host command bypassed the queued GC charges (gc_yields counts
        // one bypass decision per dispatch).
        assert!(sched.stats().gc_yields >= 1);
        sched.drain(&mut dev);
        assert_eq!(sched.pop_completions().len(), 3);
    }

    // Regression tests pinning the `schedule_wakeup` edge: a queued command
    // whose `submitted` equals the scheduler's current time must dispatch on
    // the next event-loop entry, not wait for a wakeup that the
    // `t > self.now` guard would refuse to schedule.
    #[test]
    fn submitted_equal_to_now_dispatches_without_a_wakeup() {
        let (mut dev, mut sched) = setup();
        let t0 = populate(&mut dev, 1);
        // Advance the scheduler's clock to exactly t0 with an empty window.
        sched.run_until(&mut dev, t0);
        assert_eq!(sched.now(), t0);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, t0)
            .unwrap();
        let end = sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 1, "submitted == now must not stall");
        assert_eq!(done[0].issued, t0);
        assert!(end > t0);
    }

    #[test]
    fn run_until_exactly_at_submit_time_issues_the_command() {
        let (mut dev, mut sched) = setup();
        populate(&mut dev, 1);
        let t0 = dev.drain_time();
        let late = t0 + ssd_sim::Duration::from_micros(100);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, late)
            .unwrap();
        // A window ending exactly at the submit time fires the wakeup and
        // issues the command (completion lands beyond the window).
        sched.run_until(&mut dev, late);
        assert_eq!(sched.pop_completions().len(), 0);
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].issued, late);
    }

    #[test]
    fn earlier_cross_class_arrival_supersedes_a_pending_wakeup() {
        let (mut dev, mut sched) = setup();
        populate(&mut dev, 4);
        let t0 = dev.drain_time();
        let far = t0 + ssd_sim::Duration::from_millis(2);
        let near = t0 + ssd_sim::Duration::from_micros(10);
        // A far-future host command first: run_until schedules its wakeup.
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, far)
            .unwrap();
        sched.run_until(&mut dev, t0);
        // Then a nearer GC command on the same chip: its earlier wakeup must
        // not be suppressed by the pending far one.
        sched
            .submit(CmdKind::Read { ppn: 1 }, Priority::Gc, near)
            .unwrap();
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].priority, Priority::Gc);
        assert_eq!(done[0].issued, near, "GC command must issue at its time");
        assert_eq!(done[1].issued, far.max(done[0].completed));
    }

    #[test]
    fn plane_aware_dispatch_overlaps_planes_and_keeps_per_plane_fifo() {
        // Two planes per chip: same-chip commands on different planes issue
        // concurrently, same-plane commands stay FIFO behind each other.
        let cfg = SsdConfig::tiny().with_planes(2);
        let mut dev = FlashDevice::new(cfg);
        let g = cfg.geometry;
        let mut sched = IoScheduler::new(g, SchedConfig::default());
        // (chip 0, plane 0, block 0, page 0) and (chip 0, plane 1, block 0,
        // page 0): programs submitted together at t0.
        let p0 = 0u64;
        let p1 = u64::from(g.blocks_per_plane) * u64::from(g.pages_per_block);
        let t0 = SimTime::ZERO;
        sched
            .submit(
                CmdKind::Program {
                    ppn: p0,
                    oob: OobData::mapped(1),
                },
                Priority::Host,
                t0,
            )
            .unwrap();
        sched
            .submit(
                CmdKind::Program {
                    ppn: p1,
                    oob: OobData::mapped(2),
                },
                Priority::Host,
                t0,
            )
            .unwrap();
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(
            done[0].queueing(),
            ssd_sim::Duration::ZERO,
            "plane-0 command issues immediately"
        );
        assert_eq!(
            done[1].queueing(),
            ssd_sim::Duration::ZERO,
            "the plane-1 command must not queue behind plane 0"
        );
        // NAND phases overlap: completions are one bus slot apart, not one
        // program apart.
        let spread = done[1].completed - done[0].completed;
        assert!(
            spread < ssd_sim::Duration::from_micros(40),
            "plane NAND phases must overlap (spread {spread})"
        );
        // Same-plane follow-up stays FIFO and queues.
        sched
            .submit(CmdKind::Read { ppn: p0 }, Priority::Host, sched.now())
            .unwrap();
        sched
            .submit(CmdKind::Read { ppn: p0 + 1 }, Priority::Host, sched.now())
            .unwrap();
        sched.drain(&mut dev);
        let reads = sched.pop_completions();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].kind, CmdKind::Read { ppn: p0 });
        assert!(
            reads[1].queueing() > ssd_sim::Duration::ZERO,
            "same-plane reads serialise"
        );
    }

    #[test]
    fn multi_plane_charges_occupy_every_plane_in_the_mask() {
        let cfg = SsdConfig::tiny().with_planes(2);
        let mut dev = FlashDevice::new(cfg);
        let g = cfg.geometry;
        let mut sched = IoScheduler::new(g, SchedConfig::default());
        let p0 = 0u64;
        let p1 = u64::from(g.blocks_per_plane) * u64::from(g.pages_per_block);
        // Stage a fused two-plane program, then charge it through the
        // scheduler: a host read on either plane must queue behind it.
        dev.begin_staging();
        dev.program_pages(
            &[(p0, OobData::mapped(1)), (p1, OobData::mapped(2))],
            SimTime::ZERO,
        )
        .unwrap();
        let ops = dev.end_staging();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].planes, 0b11);
        sched
            .submit(CmdKind::charge(ops[0]), Priority::Gc, SimTime::ZERO)
            .unwrap();
        // Issue the charge (idle chip: it dispatches immediately), then a
        // host read against one of its planes.
        sched.run_until(&mut dev, SimTime::ZERO);
        sched
            .submit(CmdKind::Read { ppn: p1 }, Priority::Host, SimTime::ZERO)
            .unwrap();
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].priority, Priority::Gc, "charge was already issued");
        assert!(
            done[1].queueing() > ssd_sim::Duration::ZERO,
            "the read must wait for the fused charge to release its plane"
        );
    }

    #[test]
    fn tracing_emits_lifecycle_spans_and_arbitration_instants() {
        let mut dev = FlashDevice::new(SsdConfig::tiny());
        let bound = 2;
        let mut sched = IoScheduler::new(
            *dev.geometry(),
            SchedConfig {
                queue_depth: 64,
                gc_starvation_bound: bound,
            },
        );
        let t0 = populate(&mut dev, 8);
        dev.set_tracing(true);
        dev.take_trace(); // discard the populate spans
        sched
            .submit(CmdKind::Read { ppn: 7 }, Priority::Gc, t0)
            .unwrap();
        for ppn in 0..6 {
            sched
                .submit(CmdKind::Read { ppn }, Priority::Host, t0)
                .unwrap();
        }
        sched.drain(&mut dev);
        let events = dev.take_trace();
        let lifecycles: Vec<_> = events
            .iter()
            .filter_map(|e| match e.data {
                TraceData::CmdLifecycle { gc, issued, op, .. } => {
                    assert_eq!(op, FlashOp::Read);
                    assert!(e.start <= issued && issued <= e.end);
                    Some(gc)
                }
                _ => None,
            })
            .collect();
        assert_eq!(lifecycles.len(), 7, "one span per command");
        assert_eq!(lifecycles.iter().filter(|&&gc| gc).count(), 1);
        let yields = events
            .iter()
            .filter(|e| matches!(e.data, TraceData::GcYield { .. }))
            .count();
        let forced = events
            .iter()
            .filter(|e| matches!(e.data, TraceData::GcForced { .. }))
            .count();
        assert_eq!(yields as u64, sched.stats().gc_yields);
        assert_eq!(forced as u64, sched.stats().gc_forced);
        assert!(events
            .iter()
            .any(|e| matches!(e.data, TraceData::QueueDepth { .. })));
    }

    /// The degenerate two-tenant (Host/GC) policy, constructed explicitly:
    /// [`IoScheduler::new`] must behave as if this were passed, and this
    /// must behave as the pre-tenant scheduler did. These regressions pin
    /// the per-class starvation-counter reset semantics: the winner resets
    /// *its own* counter, an uncontested host win leaves the GC counter
    /// untouched, and plane-disjoint losers accrue nothing.
    fn two_class_sched(dev: &FlashDevice, bound: u32) -> IoScheduler {
        IoScheduler::with_tenants(
            *dev.geometry(),
            SchedConfig {
                queue_depth: 64,
                gc_starvation_bound: bound,
            },
            TenantPolicy::two_class(bound),
        )
    }

    #[test]
    fn degenerate_two_class_reproduces_gc_starvation_bound() {
        // Mirror of gc_yields_to_host_until_starvation_bound through the
        // explicit weighted-policy constructor.
        let mut dev = FlashDevice::new(SsdConfig::tiny());
        let bound = 2;
        let mut sched = two_class_sched(&dev, bound);
        let t0 = populate(&mut dev, 8);
        sched
            .submit(CmdKind::Read { ppn: 7 }, Priority::Gc, t0)
            .unwrap();
        for ppn in 0..6 {
            sched
                .submit(CmdKind::Read { ppn }, Priority::Host, t0)
                .unwrap();
        }
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        let gc_pos = done
            .iter()
            .position(|c| c.priority == Priority::Gc)
            .unwrap();
        assert_eq!(
            gc_pos, bound as usize,
            "GC must run after exactly `bound` host bypasses, ran at {gc_pos}"
        );
        assert_eq!(sched.stats().gc_yields, u64::from(bound));
        assert_eq!(sched.stats().gc_forced, 1);
        // The per-class view agrees with the legacy counters.
        let classes = sched.class_stats();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[1].yields, u64::from(bound));
        assert_eq!(classes[1].forced, 1);
        assert_eq!(classes[0].submitted, 6);
        assert_eq!(classes[1].submitted, 1);
        assert_eq!(classes[0].completed, 6);
        assert_eq!(classes[1].completed, 1);
    }

    #[test]
    fn degenerate_two_class_submitted_equal_to_now_dispatches_without_a_wakeup() {
        let mut dev = FlashDevice::new(SsdConfig::tiny());
        let mut sched = two_class_sched(&dev, 4);
        let t0 = populate(&mut dev, 1);
        sched.run_until(&mut dev, t0);
        assert_eq!(sched.now(), t0);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, t0)
            .unwrap();
        let end = sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 1, "submitted == now must not stall");
        assert_eq!(done[0].issued, t0);
        assert!(end > t0);
    }

    #[test]
    fn degenerate_two_class_run_until_exactly_at_submit_time_issues_the_command() {
        let mut dev = FlashDevice::new(SsdConfig::tiny());
        let mut sched = two_class_sched(&dev, 4);
        populate(&mut dev, 1);
        let t0 = dev.drain_time();
        let late = t0 + ssd_sim::Duration::from_micros(100);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, late)
            .unwrap();
        sched.run_until(&mut dev, late);
        assert_eq!(sched.pop_completions().len(), 0);
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].issued, late);
    }

    #[test]
    fn degenerate_two_class_earlier_cross_class_arrival_supersedes_a_pending_wakeup() {
        let mut dev = FlashDevice::new(SsdConfig::tiny());
        let mut sched = two_class_sched(&dev, 4);
        populate(&mut dev, 4);
        let t0 = dev.drain_time();
        let far = t0 + ssd_sim::Duration::from_millis(2);
        let near = t0 + ssd_sim::Duration::from_micros(10);
        sched
            .submit(CmdKind::Read { ppn: 0 }, Priority::Host, far)
            .unwrap();
        sched.run_until(&mut dev, t0);
        sched
            .submit(CmdKind::Read { ppn: 1 }, Priority::Gc, near)
            .unwrap();
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].priority, Priority::Gc);
        assert_eq!(done[0].issued, near, "GC command must issue at its time");
        assert_eq!(done[1].issued, far.max(done[0].completed));
    }

    #[test]
    fn weighted_tenants_share_a_contended_chip_by_weight() {
        // Two host tenant classes at weights 2:1 over one contended chip:
        // issue order must follow the round-robin pattern A A B while both
        // have a backlog, regardless of submission interleaving.
        let mut dev = FlashDevice::new(SsdConfig::tiny());
        let policy = TenantPolicy::new(vec![
            TenantClass::weighted(2),
            TenantClass::weighted(1),
            TenantClass::background(4),
        ]);
        let mut sched = IoScheduler::with_tenants(*dev.geometry(), SchedConfig::default(), policy);
        let t0 = populate(&mut dev, 12);
        // Interleave submissions B A B A ... so FIFO order would alternate.
        for ppn in 0..12 {
            let tenant = TenantId(u32::from(ppn % 2 == 0));
            sched
                .submit_for_tenant(CmdKind::Read { ppn }, Priority::Host, tenant, t0)
                .unwrap();
        }
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        let order: Vec<u32> = done.iter().map(|c| c.tenant.0).collect();
        assert_eq!(
            order,
            vec![0, 0, 1, 0, 0, 1, 0, 0, 1, 1, 1, 1],
            "weight-2 tenant 0 wins two slots per tenant-1 slot, then tenant 1 drains"
        );
        let classes = sched.class_stats();
        assert_eq!(classes[0].submitted, 6);
        assert_eq!(classes[1].submitted, 6);
        assert!(classes[0].yields > 0 && classes[1].yields > 0);
        assert_eq!(sched.stats().gc_yields, 0, "no GC traffic was queued");
    }

    #[test]
    fn starved_tenant_class_is_forced_through() {
        // A zero-weight background tenant class with a bound of 2 behaves
        // like GC: it is bypassed twice, then forced ahead of the
        // foreground backlog.
        let mut dev = FlashDevice::new(SsdConfig::tiny());
        let policy = TenantPolicy::new(vec![
            TenantClass::weighted(1),
            TenantClass::background(2),
            TenantClass::background(u32::MAX),
        ]);
        let mut sched = IoScheduler::with_tenants(*dev.geometry(), SchedConfig::default(), policy);
        let t0 = populate(&mut dev, 8);
        sched
            .submit_for_tenant(CmdKind::Read { ppn: 7 }, Priority::Host, TenantId(1), t0)
            .unwrap();
        for ppn in 0..6 {
            sched
                .submit_for_tenant(CmdKind::Read { ppn }, Priority::Host, TenantId(0), t0)
                .unwrap();
        }
        sched.drain(&mut dev);
        let done = sched.pop_completions();
        let pos = done.iter().position(|c| c.tenant == TenantId(1)).unwrap();
        assert_eq!(pos, 2, "the background tenant is forced at its bound");
        let classes = sched.class_stats();
        assert_eq!(classes[1].yields, 2);
        assert_eq!(classes[1].forced, 1);
        assert_eq!(
            sched.stats().gc_forced,
            0,
            "tenant forcing must not masquerade as GC forcing"
        );
    }

    #[test]
    fn stats_histograms_cover_all_completions() {
        let (mut dev, mut sched) = setup();
        let t0 = populate(&mut dev, 4);
        for ppn in 0..4 {
            sched
                .submit(CmdKind::Read { ppn }, Priority::Host, t0)
                .unwrap();
        }
        sched.drain(&mut dev);
        sched.pop_completions();
        assert_eq!(sched.stats().submitted, 4);
        assert_eq!(sched.stats().completed, 4);
        assert_eq!(sched.stats().queueing.count(), 4);
        assert_eq!(sched.stats().service.count(), 4);
    }
}
