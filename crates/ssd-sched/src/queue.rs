//! The host-side queue pair: an NVMe-style bounded submission queue whose
//! slots are recycled as completions are reaped.
//!
//! [`QueuePair`] models the timing effect of a fixed queue depth on a
//! closed-loop host: a request that arrives while all `depth` slots hold
//! in-flight commands must wait for the earliest completion before it can
//! issue. It deliberately models *only* the host interface — device-side
//! scheduling (per-chip queues, GC arbitration) lives in
//! [`crate::IoScheduler`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ssd_sim::SimTime;

/// A bounded submission/completion queue pair.
///
/// ```
/// use ssd_sched::QueuePair;
/// use ssd_sim::{Duration, SimTime};
///
/// // Depth 1: the second request waits for the first to complete.
/// let mut qp = QueuePair::new(1);
/// let service = Duration::from_micros(40);
/// let (i1, c1) = qp.submit(SimTime::ZERO, |issue| issue + service);
/// assert_eq!(i1, SimTime::ZERO);
/// let (i2, _) = qp.submit(SimTime::ZERO, |issue| issue + service);
/// assert_eq!(i2, c1, "depth-1 queue serialises");
/// ```
#[derive(Debug, Clone)]
pub struct QueuePair {
    depth: usize,
    in_flight: BinaryHeap<Reverse<SimTime>>,
}

impl QueuePair {
    /// Creates a queue pair with `depth` submission slots.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        QueuePair {
            depth,
            in_flight: BinaryHeap::with_capacity(depth),
        }
    }

    /// The configured queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of commands currently occupying slots.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Submits a command that arrives at `arrival`.
    ///
    /// If a slot is free the command issues immediately; otherwise it issues
    /// when the earliest in-flight command completes (the slot is reaped and
    /// recycled). `run` maps the issue time to the command's completion time —
    /// typically by driving an FTL or device. Returns `(issue, completion)`.
    pub fn submit<F: FnOnce(SimTime) -> SimTime>(
        &mut self,
        arrival: SimTime,
        run: F,
    ) -> (SimTime, SimTime) {
        // Reap every slot whose command has already completed by `arrival`.
        while let Some(&Reverse(done)) = self.in_flight.peek() {
            if done > arrival {
                break;
            }
            self.in_flight.pop();
        }
        let issue = if self.in_flight.len() < self.depth {
            arrival
        } else {
            let Reverse(earliest) = self.in_flight.pop().expect("queue is full, so non-empty");
            arrival.max(earliest)
        };
        let completion = run(issue);
        assert!(
            completion >= issue,
            "completion must not precede issue ({completion} < {issue})"
        );
        self.in_flight.push(Reverse(completion));
        (issue, completion)
    }

    /// Completion time of the last in-flight command, or `None` when idle.
    /// Calling this drains the queue: all slots are freed.
    pub fn quiesce(&mut self) -> Option<SimTime> {
        let last = self.in_flight.iter().map(|Reverse(t)| *t).max();
        self.in_flight.clear();
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_sim::Duration;

    const SERVICE: Duration = Duration::from_micros(40);

    #[test]
    fn deep_queue_issues_immediately() {
        let mut qp = QueuePair::new(4);
        for _ in 0..4 {
            let (issue, _) = qp.submit(SimTime::ZERO, |t| t + SERVICE);
            assert_eq!(issue, SimTime::ZERO);
        }
        assert_eq!(qp.in_flight(), 4);
        // The fifth waits for the earliest completion.
        let (issue, _) = qp.submit(SimTime::ZERO, |t| t + SERVICE);
        assert_eq!(issue, SimTime::ZERO + SERVICE);
    }

    #[test]
    fn completed_slots_are_reaped_on_arrival() {
        let mut qp = QueuePair::new(2);
        qp.submit(SimTime::ZERO, |t| t + SERVICE);
        qp.submit(SimTime::ZERO, |t| t + SERVICE);
        // Arrives long after both completed: no waiting.
        let late = SimTime::from_millis(5);
        let (issue, _) = qp.submit(late, |t| t + SERVICE);
        assert_eq!(issue, late);
    }

    #[test]
    fn quiesce_reports_last_completion_and_empties() {
        let mut qp = QueuePair::new(2);
        let (_, c1) = qp.submit(SimTime::ZERO, |t| t + SERVICE);
        let (_, c2) = qp.submit(SimTime::ZERO, |t| t + SERVICE + SERVICE);
        assert_eq!(qp.quiesce(), Some(c1.max(c2)));
        assert_eq!(qp.in_flight(), 0);
        assert_eq!(qp.quiesce(), None);
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_depth_rejected() {
        QueuePair::new(0);
    }
}
