//! # ssd-sched
//!
//! An event-driven multi-queue I/O scheduler for the simulated SSD.
//!
//! The seed simulator models each chip as a single `busy_until` timestamp and
//! drives FTLs one request at a time, so queueing delay, channel contention
//! and host-vs-GC interference are invisible. This crate adds the missing
//! layer:
//!
//! * [`EventQueue`] — a deterministic binary-heap event loop keyed on
//!   [`ssd_sim::SimTime`] (ties break in insertion order),
//! * [`QueuePair`] — an NVMe-style bounded submission/completion queue pair
//!   modelling the host interface at a configurable queue depth; the
//!   experiment harness threads this through its `run_qd` mode,
//! * [`SerialEngine`] / [`ShardEngine`] — one FTL translation core: busy
//!   from each request's issue to its completion, requests queueing FIFO
//!   behind it; the seam shared by the simulated and the thread-parallel
//!   execution backends,
//! * [`SubmissionBatch`] / [`CompletionBatch`] — the SQ/CQ ring images the
//!   batch entry point [`ShardEngine::dispatch_batch`] consumes and
//!   produces: one channel round-trip per eligible window instead of per
//!   request, serially identical to N single dispatches,
//! * [`MultiIssuer`] — a bank of serial issue engines modelling the FTL
//!   frontend's translation cores: one issuer per FTL shard, each processing
//!   one request at a time (the `ftl-shard` crate routes every shard's
//!   traffic through one of these),
//! * [`IoScheduler`] — per-chip command queues with out-of-order completion
//!   and weighted per-tenant arbitration ([`TenantPolicy`]): host tenant
//!   classes share contended slots by weighted round-robin with per-class
//!   starvation bounds, and the background GC class yields to host commands
//!   on the same chip, but never more than
//!   [`SchedConfig::gc_starvation_bound`] times in a row (the degenerate
//!   [`TenantPolicy::two_class`] default),
//! * [`Command`] / [`Completion`] — the command lifecycle with the three
//!   timestamps (submitted, issued, completed) that tail-latency analysis
//!   needs, split into queueing and service components.
//!
//! The scheduler issues commands through [`ssd_sim::FlashDevice`]'s
//! enqueue/poll interface, so its timing model is *identical* to the blocking
//! calls: at queue depth 1 the scheduled path reproduces the legacy blocking
//! path bit for bit (see this crate's property tests).
//!
//! ## Example
//!
//! ```
//! use ssd_sched::{CmdKind, IoScheduler, Priority, SchedConfig};
//! use ssd_sim::{FlashDevice, OobData, SimTime, SsdConfig};
//!
//! let mut dev = FlashDevice::new(SsdConfig::tiny());
//! let mut sched = IoScheduler::new(*dev.geometry(), SchedConfig::with_queue_depth(16));
//! for ppn in 0..4 {
//!     let oob = OobData::mapped(ppn);
//!     sched.submit(CmdKind::Program { ppn, oob }, Priority::Host, SimTime::ZERO).unwrap();
//! }
//! sched.drain(&mut dev);
//! let done = sched.pop_completions();
//! assert_eq!(done.len(), 4);
//! assert!(done.iter().all(|c| c.is_ok()));
//! ```

mod cmd;
mod engine;
mod event;
mod multi;
mod queue;
mod ring;
mod sched;
mod tenant;

pub use cmd::{CmdId, CmdKind, Command, Completion, Priority};
pub use engine::{SerialEngine, ShardEngine};
pub use event::EventQueue;
pub use multi::{MultiIssuer, MultiIssuerStats};
pub use queue::QueuePair;
pub use ring::{CompletionBatch, SubmissionBatch};
pub use sched::{ClassStats, IoScheduler, SchedConfig, SchedError, SchedStats};
pub use tenant::{Arbitration, TenantArbiter, TenantClass, TenantId, TenantPolicy};
