//! Weighted per-tenant arbitration classes.
//!
//! [`IoScheduler`](crate::IoScheduler)'s original Host/GC two-class
//! arbitration generalises to N *classes*: every command carries a
//! [`TenantId`], each class has a weighted-round-robin share
//! ([`TenantClass::weight`]) and a starvation bound
//! ([`TenantClass::starvation_bound`]), and the last class is always the GC
//! class ([`crate::Priority::Gc`] commands land there regardless of tenant).
//! The historical two-class behaviour is the degenerate policy
//! [`TenantPolicy::two_class`] — one host class that always wins contended
//! slots, and a zero-weight GC class whose starvation bound forces it through
//! — which the scheduler's regression tests pin bit-for-bit.
//!
//! [`TenantArbiter`] is deliberately queue-agnostic: callers describe which
//! classes have an eligible candidate and which candidates contend for the
//! same resource, and the arbiter picks a winner while tracking bypass
//! counters and round-robin credits. The I/O scheduler runs one arbiter per
//! chip (contention = overlapping plane masks); the experiment harness reuses
//! the same arbiter for weighted tenant admission at the FTL frontend
//! (contention = the shared translation engine, i.e. always).

/// Identifies the tenant (NVMe namespace-style) a command belongs to.
///
/// Tenant 0 is the default for single-tenant workloads; GC traffic is
/// classed by [`crate::Priority::Gc`], not by its tenant id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// One arbitration class's share of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantClass {
    /// Weighted-round-robin share among *foreground* classes (weight > 0).
    /// A zero-weight class is *background*: it only runs when no foreground
    /// class has an eligible candidate, or when its starvation bound forces
    /// it through.
    pub weight: u32,
    /// How many times in a row this class's candidate may lose a contended
    /// arbitration before it is forced through.
    pub starvation_bound: u32,
}

impl TenantClass {
    /// A foreground class with the given weight and no starvation forcing.
    pub fn weighted(weight: u32) -> Self {
        TenantClass {
            weight,
            starvation_bound: u32::MAX,
        }
    }

    /// A background class (weight 0) forced through after `bound` bypasses.
    pub fn background(bound: u32) -> Self {
        TenantClass {
            weight: 0,
            starvation_bound: bound,
        }
    }
}

/// The arbitration classes of a scheduler: host tenant classes first, the GC
/// class last.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPolicy {
    classes: Vec<TenantClass>,
}

impl TenantPolicy {
    /// Creates a policy from explicit classes. The **last** class is the GC
    /// class; the ones before it serve host tenants (tenant `t` maps to
    /// class `min(t, host_classes - 1)`).
    ///
    /// # Panics
    ///
    /// Panics with fewer than two classes (at least one host class plus the
    /// GC class).
    pub fn new(classes: Vec<TenantClass>) -> Self {
        assert!(
            classes.len() >= 2,
            "a tenant policy needs at least one host class and the GC class"
        );
        TenantPolicy { classes }
    }

    /// The degenerate policy reproducing the historical Host/GC arbitration
    /// exactly: one host class that wins every contended slot, and a
    /// background GC class forced through after `gc_starvation_bound`
    /// bypasses.
    pub fn two_class(gc_starvation_bound: u32) -> Self {
        TenantPolicy::new(vec![
            TenantClass::weighted(1),
            TenantClass::background(gc_starvation_bound),
        ])
    }

    /// All classes, host classes first, the GC class last.
    pub fn classes(&self) -> &[TenantClass] {
        &self.classes
    }

    /// Number of classes (host classes plus the GC class).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Index of the GC class (always the last).
    pub fn gc_class(&self) -> usize {
        self.classes.len() - 1
    }

    /// Number of host classes.
    pub fn host_classes(&self) -> usize {
        self.classes.len() - 1
    }

    /// The class a host tenant maps to (tenants beyond the configured host
    /// classes share the last host class).
    pub fn host_class_of(&self, tenant: TenantId) -> usize {
        (tenant.0 as usize).min(self.host_classes() - 1)
    }
}

/// The outcome of one arbitration slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arbitration {
    /// The class whose candidate issues.
    pub winner: usize,
    /// Whether the winner was forced through by its starvation bound rather
    /// than chosen by weighted round-robin.
    pub forced: bool,
}

#[derive(Debug, Clone)]
struct ClassArb {
    weight: u32,
    bound: u32,
    /// Consecutive times this class's candidate lost a contended slot.
    bypassed: u32,
    /// Remaining weighted-round-robin credit.
    credit: u32,
}

/// Stateful weighted arbitration over the classes of a [`TenantPolicy`].
///
/// Decision rule per slot, given which classes are *present* (have an
/// eligible candidate) and which pairs of candidates *contend*:
///
/// 1. Among present foreground classes (weight > 0), weighted round-robin
///    picks the tentative winner: the class with the most remaining credit
///    (ties to the lowest index); credits refill to the weights when no
///    present foreground class has credit left. With no present foreground
///    class, the first present background class is tentative.
/// 2. Any *other* present class whose bypass counter has reached its
///    starvation bound and whose candidate contends with the tentative
///    winner preempts it (lowest index first) — the slot is `forced`.
/// 3. The winner's bypass counter resets; every other present class whose
///    candidate contends with the winner accrues one bypass.
///
/// Non-contending losers are *not* bypassed: their candidates issue in the
/// same simulated instant on the caller's next slot (the scheduler's
/// plane-disjoint fast path), so counting a yield would be wrong.
#[derive(Debug, Clone)]
pub struct TenantArbiter {
    classes: Vec<ClassArb>,
}

impl TenantArbiter {
    /// Creates an arbiter with every class's credit at its weight and all
    /// bypass counters at zero.
    pub fn new(policy: &TenantPolicy) -> Self {
        TenantArbiter {
            classes: policy
                .classes()
                .iter()
                .map(|c| ClassArb {
                    weight: c.weight,
                    bound: c.starvation_bound,
                    bypassed: 0,
                    credit: c.weight,
                })
                .collect(),
        }
    }

    /// Number of classes the arbiter tracks.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// A class's current consecutive-bypass count (test/diagnostic hook).
    pub fn bypassed(&self, class: usize) -> u32 {
        self.classes[class].bypassed
    }

    /// Arbitrates one slot. `present(c)` reports whether class `c` has an
    /// eligible candidate; `contends(a, b)` whether classes `a` and `b`'s
    /// candidates compete for the same resource. Indices of classes that
    /// yielded (lost a contended slot) are appended to `yielded`, which is
    /// cleared first. Returns `None` when no class is present.
    pub fn decide(
        &mut self,
        present: impl Fn(usize) -> bool,
        contends: impl Fn(usize, usize) -> bool,
        yielded: &mut Vec<usize>,
    ) -> Option<Arbitration> {
        yielded.clear();
        let n = self.classes.len();
        if !(0..n).any(&present) {
            return None;
        }
        let foreground = |c: &ClassArb, i: usize| c.weight > 0 && present(i);

        // Weighted round-robin among present foreground classes; refill when
        // none of them has credit left.
        let pick_credit = |classes: &[ClassArb]| -> Option<usize> {
            classes
                .iter()
                .enumerate()
                .filter(|(i, c)| foreground(c, *i) && c.credit > 0)
                .max_by(|(ai, a), (bi, b)| a.credit.cmp(&b.credit).then(bi.cmp(ai)))
                .map(|(i, _)| i)
        };
        let mut tentative = pick_credit(&self.classes);
        if tentative.is_none() && (0..n).any(|i| foreground(&self.classes[i], i)) {
            for c in &mut self.classes {
                c.credit = c.weight;
            }
            tentative = pick_credit(&self.classes);
        }
        let tentative = match tentative {
            Some(t) => t,
            // Only background classes are present: first one wins.
            None => (0..n).find(|&i| present(i)).expect("some class is present"),
        };

        // Starvation preemption: the lowest-indexed other present class at
        // its bound whose candidate contends with the tentative winner.
        let starved = (0..n).find(|&c| {
            c != tentative
                && present(c)
                && self.classes[c].bypassed >= self.classes[c].bound
                && contends(c, tentative)
        });
        let (winner, forced) = match starved {
            Some(c) => (c, true),
            None => (tentative, false),
        };

        for c in 0..n {
            if c != winner && present(c) && contends(c, winner) {
                self.classes[c].bypassed += 1;
                yielded.push(c);
            }
        }
        self.classes[winner].bypassed = 0;
        if !forced && self.classes[winner].weight > 0 {
            self.classes[winner].credit = self.classes[winner].credit.saturating_sub(1);
        }
        Some(Arbitration { winner, forced })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always(_: usize, _: usize) -> bool {
        true
    }

    #[test]
    fn two_class_policy_shapes() {
        let p = TenantPolicy::two_class(4);
        assert_eq!(p.num_classes(), 2);
        assert_eq!(p.gc_class(), 1);
        assert_eq!(p.host_classes(), 1);
        assert_eq!(p.host_class_of(TenantId(0)), 0);
        assert_eq!(p.host_class_of(TenantId(17)), 0, "tenants fold to class 0");
        assert_eq!(p.classes()[0], TenantClass::weighted(1));
        assert_eq!(p.classes()[1], TenantClass::background(4));
    }

    #[test]
    #[should_panic(expected = "at least one host class")]
    fn single_class_policy_rejected() {
        TenantPolicy::new(vec![TenantClass::weighted(1)]);
    }

    #[test]
    fn two_class_host_always_beats_gc_until_bound() {
        // The degenerate config's contended sequence: host wins `bound`
        // slots (GC accrues bypasses), then GC is forced through.
        let mut arb = TenantArbiter::new(&TenantPolicy::two_class(2));
        let mut yielded = Vec::new();
        let both = |c: usize| c < 2;
        for _ in 0..2 {
            let a = arb.decide(both, always, &mut yielded).unwrap();
            assert_eq!((a.winner, a.forced), (0, false));
            assert_eq!(yielded, vec![1]);
        }
        let a = arb.decide(both, always, &mut yielded).unwrap();
        assert_eq!((a.winner, a.forced), (1, true), "GC forced at the bound");
        assert_eq!(yielded, vec![0], "the host class yields the forced slot");
        // The forced slot reset GC's counter: host wins again.
        let a = arb.decide(both, always, &mut yielded).unwrap();
        assert_eq!((a.winner, a.forced), (0, false));
    }

    #[test]
    fn uncontested_background_win_is_not_forced() {
        let mut arb = TenantArbiter::new(&TenantPolicy::two_class(4));
        let mut yielded = Vec::new();
        let a = arb.decide(|c| c == 1, always, &mut yielded).unwrap();
        assert_eq!((a.winner, a.forced), (1, false));
        assert!(yielded.is_empty());
    }

    #[test]
    fn disjoint_losers_are_not_bypassed() {
        // contends == false models plane-disjoint candidates: the loser
        // issues in the same instant on the next slot, so no yield accrues.
        let mut arb = TenantArbiter::new(&TenantPolicy::two_class(1));
        let mut yielded = Vec::new();
        for _ in 0..5 {
            let a = arb.decide(|c| c < 2, |_, _| false, &mut yielded).unwrap();
            assert_eq!((a.winner, a.forced), (0, false));
            assert!(yielded.is_empty());
            assert_eq!(arb.bypassed(1), 0);
        }
    }

    #[test]
    fn weighted_round_robin_honours_weights() {
        // Classes A (weight 2) and B (weight 1) always present and
        // contending: the slot pattern is A A B repeating.
        let policy = TenantPolicy::new(vec![
            TenantClass::weighted(2),
            TenantClass::weighted(1),
            TenantClass::background(u32::MAX),
        ]);
        let mut arb = TenantArbiter::new(&policy);
        let mut yielded = Vec::new();
        let winners: Vec<usize> = (0..9)
            .map(|_| arb.decide(|c| c < 2, always, &mut yielded).unwrap().winner)
            .collect();
        assert_eq!(winners, vec![0, 0, 1, 0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn starved_foreground_class_preempts() {
        // A 1000:1 weight split starves B for long stretches; a starvation
        // bound of 3 caps the streak.
        let policy = TenantPolicy::new(vec![
            TenantClass {
                weight: 1000,
                starvation_bound: u32::MAX,
            },
            TenantClass {
                weight: 1,
                starvation_bound: 3,
            },
            TenantClass::background(u32::MAX),
        ]);
        let mut arb = TenantArbiter::new(&policy);
        let mut yielded = Vec::new();
        let mut streak = 0u32;
        let mut max_streak = 0u32;
        for _ in 0..100 {
            let a = arb.decide(|c| c < 2, always, &mut yielded).unwrap();
            if a.winner == 0 {
                streak += 1;
                max_streak = max_streak.max(streak);
            } else {
                streak = 0;
            }
        }
        assert!(
            max_streak <= 3,
            "class B must never lose more than its bound in a row (saw {max_streak})"
        );
    }

    #[test]
    fn absent_classes_do_not_accrue_bypasses() {
        let mut arb = TenantArbiter::new(&TenantPolicy::two_class(2));
        let mut yielded = Vec::new();
        for _ in 0..10 {
            let a = arb.decide(|c| c == 0, always, &mut yielded).unwrap();
            assert_eq!((a.winner, a.forced), (0, false));
        }
        assert_eq!(arb.bypassed(1), 0, "an absent GC class never yields");
        assert!(arb.decide(|_| false, always, &mut yielded).is_none());
    }
}
