//! Submission/completion ring batches for the shard-engine seam.
//!
//! The thread-parallel backend amortises its cross-core channel round-trips
//! by shipping *batches*: the dispatcher stages translation requests into a
//! per-shard [`SubmissionBatch`] (the SQ ring image) and a worker answers
//! with one [`CompletionBatch`] (the CQ ring image) per submission batch.
//! The types are deliberately plain — index-addressed parallel arrays, no
//! generics, no payloads — so [`ShardEngine::dispatch_batch`] stays
//! object-safe and a future tokio/io_uring backend can map them directly
//! onto real SQE/CQE rings: the i-th submission entry's answer is the i-th
//! completion entry, in order, always.
//!
//! [`ShardEngine::dispatch_batch`]: crate::ShardEngine::dispatch_batch

use ssd_sim::SimTime;

/// A batch of translation-request arrivals bound for one shard engine: the
/// submission-queue window of one dispatcher wakeup.
///
/// Entries are host arrival times in submission order. Batch execution is
/// defined to be *serially identical* to dispatching the entries one by one:
/// entry `i + 1` sees the engine state entry `i` left behind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubmissionBatch {
    arrivals: Vec<SimTime>,
}

impl SubmissionBatch {
    /// An empty batch (no capacity reserved).
    #[must_use]
    pub fn new() -> Self {
        SubmissionBatch::default()
    }

    /// An empty batch with room for `capacity` entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SubmissionBatch {
            arrivals: Vec::with_capacity(capacity),
        }
    }

    /// Append one submission entry; returns its index within the batch.
    pub fn push(&mut self, arrival: SimTime) -> usize {
        self.arrivals.push(arrival);
        self.arrivals.len() - 1
    }

    /// Number of entries in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the batch holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The arrival times, in submission order.
    #[must_use]
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// Drop all entries, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.arrivals.clear();
    }
}

impl FromIterator<SimTime> for SubmissionBatch {
    fn from_iter<I: IntoIterator<Item = SimTime>>(iter: I) -> Self {
        SubmissionBatch {
            arrivals: iter.into_iter().collect(),
        }
    }
}

/// The completion-queue image answering one [`SubmissionBatch`]: entry `i`
/// is the `(issue, completion)` pair of submission entry `i`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletionBatch {
    entries: Vec<(SimTime, SimTime)>,
}

impl CompletionBatch {
    /// An empty batch (no capacity reserved).
    #[must_use]
    pub fn new() -> Self {
        CompletionBatch::default()
    }

    /// An empty batch with room for `capacity` entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        CompletionBatch {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Append one `(issue, completion)` pair.
    pub fn push(&mut self, issue: SimTime, completion: SimTime) {
        self.entries.push((issue, completion));
    }

    /// Number of completion entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(issue, completion)` pairs, in submission order.
    #[must_use]
    pub fn entries(&self) -> &[(SimTime, SimTime)] {
        &self.entries
    }

    /// Drop all entries, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_sim::Duration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Duration::from_micros(us)
    }

    #[test]
    fn submission_batch_preserves_order_and_indices() {
        let mut sq = SubmissionBatch::new();
        assert!(sq.is_empty());
        assert_eq!(sq.push(t(3)), 0);
        assert_eq!(sq.push(t(1)), 1);
        assert_eq!(sq.push(t(7)), 2);
        assert_eq!(sq.len(), 3);
        assert_eq!(sq.arrivals(), &[t(3), t(1), t(7)]);
        sq.clear();
        assert!(sq.is_empty());
    }

    #[test]
    fn completion_batch_pairs_in_submission_order() {
        let mut cq = CompletionBatch::with_capacity(2);
        cq.push(t(1), t(5));
        cq.push(t(5), t(9));
        assert_eq!(cq.entries(), &[(t(1), t(5)), (t(5), t(9))]);
        assert_eq!(cq.len(), 2);
        cq.clear();
        assert!(cq.is_empty());
    }

    #[test]
    fn submission_batch_collects_from_iterator() {
        let sq: SubmissionBatch = [t(2), t(4)].into_iter().collect();
        assert_eq!(sq.arrivals(), &[t(2), t(4)]);
    }
}
