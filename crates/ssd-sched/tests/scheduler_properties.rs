//! Property tests for the scheduler invariants the rest of the workspace
//! relies on:
//!
//! 1. per chip, completions are monotone in `SimTime`,
//! 2. every submitted command completes exactly once,
//! 3. at queue depth 1 the scheduler reproduces the legacy blocking path
//!    (issue each command at the previous command's completion) bit for bit.

use proptest::prelude::*;
use ssd_sched::{CmdKind, Completion, IoScheduler, Priority, SchedConfig};
use ssd_sim::{FlashDevice, OobData, SimTime, SsdConfig};
use std::collections::HashSet;

/// One generated command: a read of a populated page or a program of a fresh
/// page, host or GC class, submitted `delay_us` after the previous command.
#[derive(Debug, Clone, Copy)]
struct Op {
    read_frac: f64,
    is_read: bool,
    is_gc: bool,
    delay_us: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0.0f64..1.0, any::<bool>(), any::<bool>(), 0u64..80).prop_map(
        |(read_frac, is_read, is_gc, delay_us)| Op {
            read_frac,
            is_read,
            is_gc,
            delay_us,
        },
    )
}

const POPULATED: u64 = 64;

/// Programs the first `POPULATED` ppns so reads have valid targets, and
/// returns the drain time.
fn populated_device() -> (FlashDevice, SimTime) {
    let mut dev = FlashDevice::new(SsdConfig::tiny());
    let mut t = SimTime::ZERO;
    for ppn in 0..POPULATED {
        t = dev
            .program_page(ppn, OobData::mapped(ppn), t)
            .expect("fresh tiny device has room for the populated pages");
    }
    (dev, t)
}

/// Materialises the generated ops into (kind, priority, submit-time) triples.
/// Programs walk fresh pages of the last block row so they stay in-order.
fn materialise(ops: &[Op], dev: &FlashDevice, t0: SimTime) -> Vec<(CmdKind, Priority, SimTime)> {
    let g = *dev.geometry();
    let mut next_fresh = g.pages_per_chip(); // first page of chip 1: untouched
    let mut at = t0;
    let mut cmds = Vec::new();
    for op in ops {
        at += ssd_sim::Duration::from_micros(op.delay_us);
        let (kind, priority) = if op.is_read || next_fresh >= g.total_pages() {
            let ppn = ((POPULATED - 1) as f64 * op.read_frac) as u64;
            // Reads may be host or GC traffic.
            let priority = if op.is_gc {
                Priority::Gc
            } else {
                Priority::Host
            };
            (CmdKind::Read { ppn }, priority)
        } else {
            let ppn = next_fresh;
            next_fresh += 1;
            // Programs stay in one arbitration class: NAND requires in-order
            // programming within a block, and host-vs-GC arbitration would
            // reorder programs of different classes on the same chip.
            (
                CmdKind::Program {
                    ppn,
                    oob: OobData::mapped(ppn),
                },
                Priority::Host,
            )
        };
        cmds.push((kind, priority, at));
    }
    cmds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants 1 and 2: exactly-once completion, per-chip monotonicity,
    /// and sane per-command timestamps, under arbitrary command mixes.
    #[test]
    fn prop_exactly_once_and_chip_monotone(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (mut dev, t0) = populated_device();
        let mut sched = IoScheduler::new(*dev.geometry(), SchedConfig::default());
        let cmds = materialise(&ops, &dev, t0);
        let mut submitted_ids = HashSet::new();
        let mut completions: Vec<Completion> = Vec::new();
        for (kind, priority, at) in cmds {
            loop {
                match sched.submit(kind, priority, at) {
                    Ok(id) => {
                        prop_assert!(submitted_ids.insert(id), "command ids must be unique");
                        break;
                    }
                    Err(_) => {
                        // Queue full: drain in-flight work, then retry.
                        sched.drain(&mut dev);
                        completions.extend(sched.pop_completions());
                    }
                }
            }
        }
        sched.drain(&mut dev);
        completions.extend(sched.pop_completions());

        // Every submitted command completed exactly once.
        prop_assert_eq!(completions.len(), submitted_ids.len());
        let completed_ids: HashSet<_> = completions.iter().map(|c| c.id).collect();
        prop_assert_eq!(completed_ids.len(), completions.len(), "no duplicate completions");
        prop_assert_eq!(completed_ids, submitted_ids);

        for c in &completions {
            prop_assert!(c.is_ok(), "generated commands are all valid: {:?}", c.error);
            prop_assert!(c.issued >= c.submitted, "issue must not precede submission");
            prop_assert!(c.completed >= c.issued, "completion must not precede issue");
        }

        // Per chip, completions are monotone in SimTime.
        let chips: HashSet<u64> = completions.iter().map(|c| c.chip).collect();
        for chip in chips {
            let times: Vec<SimTime> = completions
                .iter()
                .filter(|c| c.chip == chip)
                .map(|c| c.completed)
                .collect();
            prop_assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "chip {} completions must be monotone: {:?}", chip, times
            );
        }
    }

    /// Invariant 3: at queue depth 1 the scheduler is indistinguishable from
    /// the legacy blocking path (each command issued at the previous
    /// command's completion time).
    #[test]
    fn prop_qd1_matches_blocking_path_bit_for_bit(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let (mut sched_dev, t0) = populated_device();
        let (mut block_dev, _) = populated_device();
        let cmds = materialise(&ops, &sched_dev, t0);

        // Scheduled path at QD 1: one command in flight at a time.
        let mut sched = IoScheduler::new(*sched_dev.geometry(), SchedConfig::with_queue_depth(1));
        let mut scheduled = Vec::new();
        for &(kind, priority, at) in &cmds {
            sched.submit(kind, priority, at).expect("QD1: queue drained before each submit");
            sched.drain(&mut sched_dev);
            scheduled.extend(sched.pop_completions());
        }

        // Legacy blocking path: issue at max(previous completion, submit time).
        let mut done = t0;
        let mut blocking = Vec::new();
        for &(kind, _, at) in &cmds {
            let issue = done.max(at);
            done = match kind {
                CmdKind::Read { ppn } => block_dev.read_page(ppn, issue).unwrap(),
                CmdKind::Program { ppn, oob } => block_dev.program_page(ppn, oob, issue).unwrap(),
                CmdKind::Erase { flat_block } => block_dev.erase_block(flat_block, issue).unwrap(),
                CmdKind::Charge {
                    op,
                    chip,
                    channel,
                    planes,
                } => block_dev.charge_op(op, chip, channel, planes, issue),
            };
            blocking.push(done);
        }

        prop_assert_eq!(scheduled.len(), blocking.len());
        for (c, &expected) in scheduled.iter().zip(blocking.iter()) {
            prop_assert_eq!(
                c.completed, expected,
                "QD1 completion diverged from the blocking path for {:?}", c.kind
            );
        }
        // The device end-states agree exactly.
        prop_assert_eq!(sched_dev.stats(), block_dev.stats());
        prop_assert_eq!(sched_dev.drain_time(), block_dev.drain_time());
    }
}
