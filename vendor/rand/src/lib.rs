//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the (small) subset of the rand 0.8 API the workspace uses:
//!
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer ranges,
//!   half-open float ranges), `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a xoshiro256\*\* generator seeded via SplitMix64,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The generator is deterministic for a given seed, which is all the
//! simulator's workload generators require. It is **not** the same stream as
//! the real `StdRng`, and it is not cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the generator's raw 64-bit output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`f64` in `[0,1)`, full-range ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Everything most callers want in scope.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            if f < 0.1 {
                lo = true;
            }
            if f > 0.9 {
                hi = true;
            }
        }
        assert!(lo && hi, "samples must reach both tails");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
