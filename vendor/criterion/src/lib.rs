//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's `benches/`
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then a fixed measurement window, and prints the mean wall-clock time per
//! iteration. There are no statistics, plots or baselines — just enough to
//! keep `cargo bench` working and give order-of-magnitude numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises its setup cost (accepted for API
/// compatibility; the stub always re-runs the setup per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the timed closures of one benchmark.
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

const WARMUP_ITERS: u64 = 3;
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let window = Instant::now();
        while window.elapsed() < MEASURE_WINDOW {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let window = Instant::now();
        while window.elapsed() < MEASURE_WINDOW {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name:<40} (no iterations)");
            return;
        }
        let per_iter = self.total.as_nanos() / u128::from(self.iterations);
        println!(
            "{name:<40} {per_iter:>12} ns/iter ({} iters)",
            self.iterations
        );
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark of the group against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u64;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(42), &7u64, |b, &seven| {
            b.iter_batched(
                || vec![seven; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("fit", 128).to_string(), "fit/128");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }
}
