//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map` and `boxed`, range and tuple strategies,
//!   [`collection::vec`], [`prop_oneof!`] and `any::<bool>()`,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Inputs are generated from a deterministic RNG seeded per test name, so a
//! failing case reproduces on re-run. There is no shrinking: a failure reports
//! the generated inputs via the panic message of the assertion that fired.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe strategy facade used by [`BoxedStrategy`].
    pub trait DynStrategy<T> {
        /// Generates one value.
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A uniform choice between type-erased alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T: rand::Standard> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// Generates any value of `T` (uniform over its representable values).
    pub fn any<T: rand::Standard>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec size range must be non-empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runtime configuration for [`proptest!`] blocks.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the simulator-heavy
        // properties fast while still exploring a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

#[doc(hidden)]
pub use rand as __rand;

/// Derives a per-test RNG seed from the test name (FNV-1a) and case index.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Asserts a condition inside a property (panics with the inputs in scope).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            for __case in 0..config.cases {
                let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::case_seed(stringify!($name), __case),
                );
                $( let $arg = ($strategy).generate(&mut __rng); )*
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use rand;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Coin {
        Heads(u64),
        Tails(f64),
    }

    fn coin() -> impl Strategy<Value = Coin> {
        prop_oneof![
            (0u64..100).prop_map(Coin::Heads),
            (0.0f64..1.0).prop_map(Coin::Tails),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, f in 0.0f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in collection::vec((0usize..4, any::<bool>()), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for (n, _flag) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn oneof_picks_both_arms(values in collection::vec(coin(), 40..41)) {
            let heads = values.iter().filter(|c| matches!(c, Coin::Heads(_))).count();
            prop_assert!(heads > 0 && heads < values.len(), "both arms must appear");
        }
    }

    #[test]
    fn seeds_differ_per_test_and_case() {
        assert_ne!(super::case_seed("a", 0), super::case_seed("b", 0));
        assert_ne!(super::case_seed("a", 0), super::case_seed("a", 1));
    }
}
